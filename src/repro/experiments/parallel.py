"""Process-pool fan-out and process-wide engine configuration.

The sweep grids are embarrassingly parallel — every (video, crf, refs,
preset) point is an independent, deterministic computation — so the
engine shards them across a :class:`~concurrent.futures.ProcessPoolExecutor`.
Two invariants make the fan-out safe:

- **Determinism.** Workers run *the same* compute function the serial
  path runs, on the same payloads, and ``Executor.map`` preserves input
  order — so a parallel sweep returns bit-identical records in the same
  order as ``--jobs 1`` (asserted by
  ``tests/integration/test_parallel_determinism.py``).
- **Telemetry merge.** Each worker opens its own telemetry session
  *under the parent's trace context* (propagated alongside the payload),
  ships its full exported state — metrics registry *and* span tree —
  back with the result, and the parent folds it in via
  :func:`repro.obs.session.merge_worker_state`: counters and histograms
  in ``run.json`` aggregate the whole fan-out exactly as a serial run
  would, and worker spans are re-parented under the ``parallel.fan_out``
  span so the Chrome-trace export shows one cross-process flame graph.

A third invariant was added with the resilience layer:

- **Fault tolerance.** Per-task work runs under the engine's
  :class:`~repro.resilience.retry.RetryPolicy`: retryable exceptions
  (injected faults, transient I/O) are re-executed up to the attempt
  budget, and a died worker process (``BrokenProcessPool``) triggers a
  pool restart that resubmits only the unfinished tasks.
  :func:`run_tasks` reports per-task :class:`TaskOutcome`\\ s so callers
  can degrade to partial results instead of aborting a whole campaign;
  :func:`fan_out` keeps the historical all-or-nothing contract on top.

Process-wide defaults (worker count, cache directory) are set by
:func:`configure` — the CLI's ``--jobs`` / ``--cache-dir`` flags land
here — and fall back to the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``
environment variables, which is how the benchmark harness opts in.
"""

from __future__ import annotations

import os
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import TypeVar

from repro import resilience
from repro.experiments.cache import ResultCache
from repro.obs import session as obs
from repro.obs.spans import TraceContext
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy

__all__ = [
    "TaskOutcome",
    "configure",
    "default_cache",
    "default_jobs",
    "fan_out",
    "run_tasks",
    "serial_map",
]

_JOBS_ENV = "REPRO_JOBS"
_CACHE_ENV = "REPRO_CACHE_DIR"

_UNSET = object()

#: Process-wide overrides; ``None`` means "fall back to the environment".
_configured_jobs: int | None = None
_configured_cache: ResultCache | None = None
_cache_disabled: bool = False

_P = TypeVar("_P")
_R = TypeVar("_R")


def configure(*, jobs: object = _UNSET, cache_dir: object = _UNSET) -> None:
    """Set process-wide sweep-engine defaults.

    ``jobs``: a worker count, or ``None`` to fall back to ``REPRO_JOBS``.
    ``cache_dir``: a directory for the persistent result cache, ``False``
    to disable caching entirely, or ``None`` to fall back to
    ``REPRO_CACHE_DIR``. Arguments left unset keep their current value.
    """
    global _configured_jobs, _configured_cache, _cache_disabled
    if jobs is not _UNSET:
        if jobs is None:
            _configured_jobs = None
        else:
            _configured_jobs = max(int(jobs), 1)  # type: ignore[arg-type]
    if cache_dir is not _UNSET:
        if cache_dir is False:
            _configured_cache = None
            _cache_disabled = True
        elif cache_dir is None:
            _configured_cache = None
            _cache_disabled = False
        else:
            _configured_cache = ResultCache(Path(cache_dir))  # type: ignore[arg-type]
            _cache_disabled = False


def default_jobs() -> int:
    """The configured worker count, else ``REPRO_JOBS``, else 1."""
    if _configured_jobs is not None:
        return _configured_jobs
    env = os.environ.get(_JOBS_ENV, "").strip()
    if env:
        try:
            return max(int(env), 1)
        except ValueError:
            pass
    return 1


def default_cache() -> ResultCache | None:
    """The configured result cache, else one at ``REPRO_CACHE_DIR``,
    else ``None`` (persistent caching off)."""
    if _cache_disabled:
        return None
    if _configured_cache is not None:
        return _configured_cache
    env = os.environ.get(_CACHE_ENV, "").strip()
    if env:
        return ResultCache(Path(env))
    return None


def serial_map(compute: Callable[[_P], _R], payloads: Iterable[_P]) -> list[_R]:
    """The serial fallback: plain in-process map, in order."""
    return [compute(payload) for payload in payloads]


@dataclass
class TaskOutcome:
    """One task's terminal state after retries.

    ``result`` is meaningful only when ``error`` is ``None``;
    ``attempts`` counts every execution, including the successful one.
    """

    index: int
    result: object | None
    error: BaseException | None
    attempts: int

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_isolated(
    compute: Callable[[_P], _R], index: int, payload: _P,
    ctx: dict[str, object] | None = None,
) -> tuple[_R, dict[str, object]]:
    """Worker-side wrapper: run ``compute`` under a fresh telemetry
    session — threaded onto the parent's trace via ``ctx`` (a serialized
    :class:`~repro.obs.spans.TraceContext`) — and return (result,
    exported session state: metrics + finished spans).

    Fault call-indices reset per task (activation caps persist for the
    process) so an installed plan activates at deterministic points no
    matter how the pool schedules payloads onto worker processes; the
    ``worker.task`` site (detail: the payload index) is where ``kill``
    plans crash a worker mid-sweep.
    """
    obs.reset_for_subprocess()  # drop any session inherited across fork
    faults.reset_counters(activations=False)
    trace = TraceContext.from_dict(ctx) if ctx is not None else None
    with obs.telemetry_session(trace) as tel:
        with obs.span("worker.task", task=index):
            faults.fault_point("worker.task", detail=str(index))
            result = compute(payload)
    return result, tel.export_state()


def run_tasks(
    compute: Callable[[_P], _R],
    payloads: Sequence[_P],
    *,
    jobs: int | None = None,
    label: str = "sweep",
    policy: RetryPolicy | None = None,
    on_result: Callable[[int, _R], None] | None = None,
    sleeper: Callable[[float], None] = time.sleep,
) -> list[TaskOutcome]:
    """Run ``compute`` over ``payloads`` with retries and crash recovery,
    returning one :class:`TaskOutcome` per payload, in payload order.

    Serial (``jobs`` <= 1 or a single payload) runs in-process, retrying
    each task under ``policy`` (default: the engine's configured retry
    policy). Parallel runs shard across a process pool with at most
    ``jobs`` tasks in flight; a retryable worker exception resubmits the
    task to the same pool, while a died worker (``BrokenProcessPool``)
    charges every in-flight task an attempt (the culprit is
    indistinguishable from its collateral neighbors) and retries each of
    them *isolated* in a single-task pool before the main pool restarts.
    A deterministic crasher therefore converges to a failed outcome
    after ``max_attempts`` without ever exhausting an innocent
    neighbor's budget.

    ``on_result(index, result)`` streams successes back as they complete
    (out of order under parallelism); the sweep runner uses it to
    checkpoint and cache incrementally, so progress survives even a
    killed parent.
    """
    payloads = list(payloads)
    pol = policy if policy is not None else resilience.retry_policy()
    n_jobs = default_jobs() if jobs is None else max(int(jobs), 1)
    outcomes: list[TaskOutcome | None] = [None] * len(payloads)
    if not payloads:
        return []

    if n_jobs <= 1 or len(payloads) <= 1:
        for index, payload in enumerate(payloads):
            attempts = 0

            def _attempt(payload: _P = payload) -> _R:
                nonlocal attempts
                attempts += 1
                return compute(payload)

            try:
                result = resilience.call_with_retry(
                    _attempt,
                    policy=pol,
                    token=f"{label}:{index}",
                    label=label,
                    sleeper=sleeper,
                )
            except Exception as exc:
                outcomes[index] = TaskOutcome(index, None, exc, attempts)
                continue
            outcomes[index] = TaskOutcome(index, result, None, attempts)
            if on_result is not None:
                on_result(index, result)
        return outcomes  # type: ignore[return-value]

    workers = min(n_jobs, len(payloads))
    obs.inc("parallel.fan_outs")
    obs.inc("parallel.tasks", len(payloads))
    #: payload index -> failed attempts so far.
    pending: dict[int, int] = {i: 0 for i in range(len(payloads))}
    #: Tasks charged an attempt by a pool break. The culprit is
    #: indistinguishable from its collateral neighbors, so each suspect
    #: retries alone in a single-task pool: a repeat crash then burns
    #: only the crasher's own budget, never an innocent's.
    suspects: deque[int] = deque()
    retries = 0
    pool_restarts = 0

    def charge_crash(i: int, exc: BaseException) -> None:
        """One attempt burned by a died worker; retry isolated or give up."""
        nonlocal retries
        attempts = pending[i] + 1
        if attempts >= pol.max_attempts:
            obs.inc("retry.giveups")
            outcomes[i] = TaskOutcome(i, None, exc, attempts)
            del pending[i]
        else:
            pending[i] = attempts
            retries += 1
            obs.inc("retry.retries")
            obs.observe(
                "retry.backoff_seconds",
                pol.backoff_delay(attempts, token=f"{label}:{i}"),
            )
            suspects.append(i)

    def complete(i: int, result: _R, state: dict[str, object]) -> None:
        obs.merge_worker_state(state)
        outcomes[i] = TaskOutcome(i, result, None, pending.pop(i) + 1)
        if on_result is not None:
            on_result(i, result)

    def fail(i: int, exc: BaseException) -> None:
        if pol.is_retryable(exc):
            obs.inc("retry.giveups")
        outcomes[i] = TaskOutcome(i, None, exc, pending.pop(i) + 1)

    with obs.span(
        "parallel.fan_out", label=label, jobs=workers, tasks=len(payloads)
    ) as sp:
        # Captured *inside* the span so worker trees re-parent under it.
        ctx = obs.current_trace_context()
        ctx_dict = ctx.as_dict() if ctx is not None else None
        while pending:
            while suspects:
                i = suspects.popleft()
                if i not in pending:
                    continue
                sleeper(pol.backoff_delay(pending[i], token=f"{label}:{i}"))
                try:
                    with ProcessPoolExecutor(max_workers=1) as solo:
                        result, state = solo.submit(
                            _run_isolated, compute, i, payloads[i], ctx_dict
                        ).result()
                except BrokenExecutor as exc:
                    pool_restarts += 1
                    obs.inc("parallel.pool_restarts")
                    charge_crash(i, exc)
                except Exception as exc:
                    if pol.is_retryable(exc) and pending[i] + 1 < pol.max_attempts:
                        pending[i] += 1
                        retries += 1
                        obs.inc("retry.retries")
                        suspects.append(i)
                    else:
                        fail(i, exc)
                else:
                    complete(i, result, state)
            if not pending:
                break

            to_submit: deque[int] = deque(sorted(pending))
            inflight: dict[object, int] = {}
            broken = False

            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            ) as pool:

                def top_up() -> None:
                    # Bounded in-flight submission: at most `workers`
                    # tasks are lost to attempt-charging when a worker
                    # dies, instead of the whole remaining queue.
                    nonlocal broken
                    while (
                        not broken
                        and to_submit
                        and len(inflight) < workers
                    ):
                        i = to_submit.popleft()
                        try:
                            fut = pool.submit(
                                _run_isolated, compute, i, payloads[i],
                                ctx_dict,
                            )
                        except (BrokenExecutor, RuntimeError):
                            broken = True
                            to_submit.appendleft(i)
                            return
                        inflight[fut] = i

                top_up()
                while inflight:
                    done, _ = wait(
                        set(inflight), return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        i = inflight.pop(fut)
                        try:
                            result, state = fut.result()  # type: ignore[attr-defined]
                        except BrokenExecutor as exc:
                            broken = True
                            charge_crash(i, exc)
                            continue
                        except Exception as exc:
                            if (
                                pol.is_retryable(exc)
                                and pending[i] + 1 < pol.max_attempts
                            ):
                                pending[i] += 1
                                retries += 1
                                obs.inc("retry.retries")
                                obs.observe(
                                    "retry.backoff_seconds",
                                    pol.backoff_delay(
                                        pending[i], token=f"{label}:{i}"
                                    ),
                                )
                                to_submit.append(i)
                            else:
                                fail(i, exc)
                            continue
                        complete(i, result, state)
                    top_up()

            if broken:
                pool_restarts += 1
                obs.inc("parallel.pool_restarts")
        sp.set(
            retries=retries,
            pool_restarts=pool_restarts,
            failures=sum(1 for o in outcomes if o is not None and not o.ok),
        )
    return outcomes  # type: ignore[return-value]


def fan_out(
    compute: Callable[[_P], _R],
    payloads: Sequence[_P],
    *,
    jobs: int | None = None,
    label: str = "sweep",
) -> list[_R]:
    """Run ``compute`` over ``payloads``, sharded across worker processes.

    Results come back in payload order. With ``jobs`` (or the engine
    default) at 1, or fewer than two payloads, the work runs in the
    current process — same code path, no pool. ``compute`` must be a
    module-level function and payloads/results must be picklable.

    This is the all-or-nothing front door: tasks are retried under the
    engine's retry policy, but the first task that still fails aborts
    the call by re-raising its error. Callers that want partial results
    use :func:`run_tasks`.
    """
    outcomes = run_tasks(compute, payloads, jobs=jobs, label=label)
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
    return [outcome.result for outcome in outcomes]  # type: ignore[misc]
