"""Process-pool fan-out and process-wide engine configuration.

The sweep grids are embarrassingly parallel — every (video, crf, refs,
preset) point is an independent, deterministic computation — so the
engine shards them across a :class:`~concurrent.futures.ProcessPoolExecutor`.
Two invariants make the fan-out safe:

- **Determinism.** Workers run *the same* compute function the serial
  path runs, on the same payloads, and ``Executor.map`` preserves input
  order — so a parallel sweep returns bit-identical records in the same
  order as ``--jobs 1`` (asserted by
  ``tests/integration/test_parallel_determinism.py``).
- **Telemetry merge.** Each worker opens its own telemetry session,
  ships its metrics registry state back alongside the result, and the
  parent folds it in via :func:`repro.obs.session.merge_worker_metrics`;
  counters and histograms in ``run.json`` therefore aggregate the whole
  fan-out exactly as a serial run would.

Process-wide defaults (worker count, cache directory) are set by
:func:`configure` — the CLI's ``--jobs`` / ``--cache-dir`` flags land
here — and fall back to the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``
environment variables, which is how the benchmark harness opts in.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from pathlib import Path
from typing import TypeVar

from repro.experiments.cache import ResultCache
from repro.obs import session as obs

__all__ = [
    "configure",
    "default_cache",
    "default_jobs",
    "fan_out",
    "serial_map",
]

_JOBS_ENV = "REPRO_JOBS"
_CACHE_ENV = "REPRO_CACHE_DIR"

_UNSET = object()

#: Process-wide overrides; ``None`` means "fall back to the environment".
_configured_jobs: int | None = None
_configured_cache: ResultCache | None = None
_cache_disabled: bool = False

_P = TypeVar("_P")
_R = TypeVar("_R")


def configure(*, jobs: object = _UNSET, cache_dir: object = _UNSET) -> None:
    """Set process-wide sweep-engine defaults.

    ``jobs``: a worker count, or ``None`` to fall back to ``REPRO_JOBS``.
    ``cache_dir``: a directory for the persistent result cache, ``False``
    to disable caching entirely, or ``None`` to fall back to
    ``REPRO_CACHE_DIR``. Arguments left unset keep their current value.
    """
    global _configured_jobs, _configured_cache, _cache_disabled
    if jobs is not _UNSET:
        if jobs is None:
            _configured_jobs = None
        else:
            _configured_jobs = max(int(jobs), 1)  # type: ignore[arg-type]
    if cache_dir is not _UNSET:
        if cache_dir is False:
            _configured_cache = None
            _cache_disabled = True
        elif cache_dir is None:
            _configured_cache = None
            _cache_disabled = False
        else:
            _configured_cache = ResultCache(Path(cache_dir))  # type: ignore[arg-type]
            _cache_disabled = False


def default_jobs() -> int:
    """The configured worker count, else ``REPRO_JOBS``, else 1."""
    if _configured_jobs is not None:
        return _configured_jobs
    env = os.environ.get(_JOBS_ENV, "").strip()
    if env:
        try:
            return max(int(env), 1)
        except ValueError:
            pass
    return 1


def default_cache() -> ResultCache | None:
    """The configured result cache, else one at ``REPRO_CACHE_DIR``,
    else ``None`` (persistent caching off)."""
    if _cache_disabled:
        return None
    if _configured_cache is not None:
        return _configured_cache
    env = os.environ.get(_CACHE_ENV, "").strip()
    if env:
        return ResultCache(Path(env))
    return None


def serial_map(compute: Callable[[_P], _R], payloads: Iterable[_P]) -> list[_R]:
    """The serial fallback: plain in-process map, in order."""
    return [compute(payload) for payload in payloads]


def _run_isolated(
    compute: Callable[[_P], _R], payload: _P
) -> tuple[_R, dict[str, object]]:
    """Worker-side wrapper: run ``compute`` under a fresh telemetry
    session and return (result, exported metrics state)."""
    obs.reset_for_subprocess()  # drop any session inherited across fork
    with obs.telemetry_session() as tel:
        result = compute(payload)
    return result, tel.metrics.export_state()


def fan_out(
    compute: Callable[[_P], _R],
    payloads: Sequence[_P],
    *,
    jobs: int | None = None,
    label: str = "sweep",
) -> list[_R]:
    """Run ``compute`` over ``payloads``, sharded across worker processes.

    Results come back in payload order. With ``jobs`` (or the engine
    default) at 1, or fewer than two payloads, this degrades to
    :func:`serial_map` in the current process — same code path, no pool.
    ``compute`` must be a module-level function and payloads/results must
    be picklable.
    """
    payloads = list(payloads)
    n_jobs = default_jobs() if jobs is None else max(int(jobs), 1)
    if n_jobs <= 1 or len(payloads) <= 1:
        return serial_map(compute, payloads)
    workers = min(n_jobs, len(payloads))
    obs.inc("parallel.fan_outs")
    obs.inc("parallel.tasks", len(payloads))
    results: list[_R] = []
    with obs.span(
        "parallel.fan_out", label=label, jobs=workers, tasks=len(payloads)
    ):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for result, state in pool.map(
                partial(_run_isolated, compute), payloads
            ):
                obs.merge_worker_metrics(state)
                results.append(result)
    return results
