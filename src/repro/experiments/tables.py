"""Tables I-IV: the paper's static/config tables, regenerated from code.

Table I additionally *measures* the entropy of our synthetic stand-ins so
the report shows that the complexity ordering of the catalog is realized
by the generators, not merely asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import format_table
from repro.codec.presets import PRESET_NAMES, PRESETS
from repro.experiments import parallel
from repro.experiments.cache import content_key
from repro.experiments.runner import ExperimentScale, QUICK
from repro.obs import session as obs
from repro.scheduling.task import TABLE_III_TASKS
from repro.uarch.configs import CONFIG_NAMES, CONFIGS
from repro.video.metrics import estimate_entropy
from repro.video.vbench import VBENCH_VIDEOS, load_video

__all__ = ["Tab1Result", "tab1", "tab2", "tab3", "tab4"]


def _measured_entropy(scale: ExperimentScale, name: str) -> float:
    """Measured entropy of one synthetic stand-in, via the result cache."""
    cache = parallel.default_cache()
    key = content_key(
        "entropy",
        video={"name": name, "width": scale.width, "height": scale.height,
               "n_frames": scale.n_frames},
    )
    if cache is not None:
        hit = cache.get_value(key)
        if isinstance(hit, (int, float)):
            obs.inc("tab1.entropy_cache_hits")
            return float(hit)
    clip = load_video(
        name, width=scale.width, height=scale.height, n_frames=scale.n_frames
    )
    measured = float(estimate_entropy(clip))
    if cache is not None:
        cache.put_value(key, measured, kind="entropy")
    return measured


@dataclass
class Tab1Result:
    rows: list[list[object]]
    measured_entropy: dict[str, float]

    def render(self) -> str:
        table = format_table(
            ["Full Name", "Short Name", "Resolution", "FPS",
             "Entropy (paper)", "Entropy (measured)"],
            self.rows,
            floatfmt=".2f",
        )
        return "Table I — vbench videos info\n" + table


def tab1(scale: ExperimentScale = QUICK) -> Tab1Result:
    rows = []
    measured: dict[str, float] = {}
    for info in VBENCH_VIDEOS:
        m = _measured_entropy(scale, info.short_name)
        measured[info.short_name] = m
        rows.append(
            [
                info.full_name,
                info.short_name,
                info.resolution_label,
                info.fps,
                info.entropy,
                m,
            ]
        )
    return Tab1Result(rows=rows, measured_entropy=measured)


def tab2() -> str:
    options = (
        "aq_mode", "b_adapt", "bframes", "deblock", "me", "merange",
        "partitions", "refs", "scenecut", "subme", "trellis",
    )
    rows = []
    for option in options:
        rows.append([option] + [str(PRESETS[p][option]) for p in PRESET_NAMES])
    table = format_table(["Option"] + list(PRESET_NAMES), rows)
    return "Table II — selection of the important options for different presets\n" + table


def tab3() -> str:
    rows = [
        [t.task_id, t.video, t.crf, t.refs, t.preset] for t in TABLE_III_TASKS
    ]
    table = format_table(["Task#", "Video", "crf", "refs", "Preset"], rows)
    return "Table III — transcoding parameters used for scheduler simulation\n" + table


def tab4() -> str:
    keys = (
        "L1d", "L1i", "L2", "L3", "L4", "itlb", "ROB", "RS",
        "issue_at_dispatch", "branch_predictor",
    )
    rows = []
    described = {name: CONFIGS[name].describe() for name in CONFIG_NAMES}
    for key in keys:
        rows.append([key] + [str(described[n][key]) for n in CONFIG_NAMES])
    table = format_table(["Param"] + list(CONFIG_NAMES), rows)
    return "Table IV — microarchitectural configurations for simulation\n" + table
