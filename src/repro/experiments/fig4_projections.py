"""Figure 4: the two projections of the crf x refs sweep.

Projection A: one horizontal line per crf value in (bitrate, PSNR) space —
the line's vertical position is the (crf-determined) quality and its
*length* is the file-size range achievable by sweeping refs; the paper
observes longer lines (more refs benefit) at low crf and shrinking lines
(diminishing returns) as crf grows.

Projection B: transcoding time versus refs, one curve per crf — time
grows with refs with an elbow beyond which extra references stop paying.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import format_table
from repro.experiments.runner import ExperimentScale, QUICK, shared_runner

__all__ = ["Fig4Result", "run"]


@dataclass
class ProjectionALine:
    crf: int
    psnr_db: float  # mean over refs (crf pins quality)
    bitrate_min: float
    bitrate_max: float

    @property
    def line_length(self) -> float:
        """Bitrate range achievable by sweeping refs at this crf."""
        return self.bitrate_max - self.bitrate_min


@dataclass
class Fig4Result:
    crf_values: tuple[int, ...]
    refs_values: tuple[int, ...]
    projection_a: list[ProjectionALine]
    # projection B: time_seconds[crf][refs]
    projection_b: dict[int, dict[int, float]]

    def render(self) -> str:
        rows_a = [
            [f"crf={l.crf}", l.psnr_db, l.bitrate_min, l.bitrate_max, l.line_length]
            for l in self.projection_a
        ]
        part_a = format_table(
            ["line", "PSNR(dB)", "bitrate_min", "bitrate_max", "length(kbps)"],
            rows_a,
        )
        headers = ["crf \\ refs"] + [str(r) for r in self.refs_values]
        rows_b = []
        for crf in self.crf_values:
            rows_b.append(
                [f"crf={crf}"]
                + [self.projection_b[crf][r] * 1e3 for r in self.refs_values]
            )
        part_b = format_table(headers, rows_b, floatfmt=".2f")
        return (
            "Figure 4 — Projection A (PSNR vs bitrate lines per crf)\n"
            + part_a
            + "\n\nFigure 4 — Projection B (transcode time [ms] vs refs per crf)\n"
            + part_b
        )


def run(scale: ExperimentScale = QUICK) -> Fig4Result:
    runner = shared_runner(scale)
    records = runner.crf_refs_sweep()
    by_key = {(r.crf, r.refs): r.counters for r in records}

    projection_a: list[ProjectionALine] = []
    projection_b: dict[int, dict[int, float]] = {}
    for crf in scale.crf_values:
        rates = [by_key[(crf, r)].bitrate_kbps for r in scale.refs_values]
        psnrs = [by_key[(crf, r)].psnr_db for r in scale.refs_values]
        projection_a.append(
            ProjectionALine(
                crf=crf,
                psnr_db=float(sum(psnrs) / len(psnrs)),
                bitrate_min=min(rates),
                bitrate_max=max(rates),
            )
        )
        projection_b[crf] = {
            r: by_key[(crf, r)].time_seconds for r in scale.refs_values
        }
    return Fig4Result(
        crf_values=scale.crf_values,
        refs_values=scale.refs_values,
        projection_a=projection_a,
        projection_b=projection_b,
    )
