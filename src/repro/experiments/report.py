"""ASCII rendering of experiment results: heatmaps, series, tables."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._util import format_table

__all__ = ["ascii_heatmap", "series_table", "format_table"]

_SHADES = " .:-=+*#%@"


def ascii_heatmap(
    grid: np.ndarray,
    *,
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    title: str,
    value_fmt: str = ".1f",
) -> str:
    """Render a 2-D value grid as a shaded heatmap with numeric margins.

    Rows/cols follow the paper's Fig. 3/5 convention: rows are refs,
    columns are crf. Each cell shows a shade character scaled between the
    grid's min and max; row/column header lines carry the labels and the
    min/max legend makes values recoverable.
    """
    arr = np.asarray(grid, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D grid, got shape {arr.shape}")
    if arr.shape != (len(row_labels), len(col_labels)):
        raise ValueError("grid shape does not match labels")
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0

    def shade(v: float) -> str:
        idx = int((v - lo) / span * (len(_SHADES) - 1))
        return _SHADES[idx]

    width = max(len(str(c)) for c in col_labels)
    out = [f"{title}   [min={format(lo, value_fmt)} '{_SHADES[0]}'"
           f" .. max={format(hi, value_fmt)} '{_SHADES[-1]}']"]
    header = " " * 8 + " ".join(str(c).rjust(width) for c in col_labels)
    out.append(header)
    for i, rl in enumerate(row_labels):
        cells = " ".join(shade(arr[i, j]).rjust(width) for j in range(arr.shape[1]))
        out.append(f"{str(rl):>6}  {cells}")
    return "\n".join(out)


def series_table(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    floatfmt: str = ".2f",
) -> str:
    """Tabulate several named series against a shared x axis."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, floatfmt=floatfmt)
