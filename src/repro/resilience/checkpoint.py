"""Sweep checkpoints: a manifest of completed cells, persisted next to
the result cache, so interrupted campaigns resume instead of restarting.

A manifest is keyed by a :func:`sweep_id` — a content hash over the
ordered cell cache-keys of the whole sweep — so a resumed run finds its
predecessor's manifest if and only if it is executing *the same* sweep
(same grid, same options, same µarch config, same repro version). The
manifest stores each completed cell's JSON payload inline, which makes
resume independent of the persistent result cache: a sweep checkpointed
with caching disabled still resumes.

Write discipline matches the result cache: periodic atomic
temp-file-then-``os.replace`` flushes (every ``flush_every`` completed
cells and at sweep end), so a killed worker pool or a SIGKILLed parent
can lose at most the last ``flush_every - 1`` cells of progress, never
the manifest itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections.abc import Sequence
from pathlib import Path

from repro.obs import session as obs

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "SweepCheckpoint",
    "sweep_id",
]

CHECKPOINT_SCHEMA_VERSION = 1

#: Completed cells between automatic manifest flushes.
DEFAULT_FLUSH_EVERY = 8


def sweep_id(label: str, cell_keys: Sequence[str]) -> str:
    """Stable identity of one sweep: hash of its label and the ordered
    cell cache-keys (which already embed options, scale, config, and
    repro version)."""
    payload = json.dumps(
        {"label": label, "cells": list(cell_keys)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SweepCheckpoint:
    """One sweep's progress manifest.

    ``cells`` maps cell cache-key -> result payload for completed cells;
    ``failed`` maps cell cache-key -> failure summary for cells that
    exhausted their retry budget.
    """

    def __init__(
        self,
        root: str | Path,
        sweep: str,
        *,
        label: str = "sweep",
        total: int = 0,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        self.root = Path(root)
        self.sweep = sweep
        self.label = label
        self.total = total
        self.flush_every = max(int(flush_every), 1)
        self.cells: dict[str, object] = {}
        self.failed: dict[str, dict[str, object]] = {}
        self._pending = 0

    @property
    def path(self) -> Path:
        return self.root / f"{self.sweep}.json"

    # ------------------------------------------------------------------
    def load(self) -> bool:
        """Populate from an existing manifest. Returns ``True`` when a
        compatible manifest with at least one recorded cell was found;
        corruption, schema drift, or a different sweep id all read as
        "no checkpoint" (the sweep simply starts fresh)."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return False
        try:
            doc = json.loads(text)
        except ValueError:
            return False
        if (
            not isinstance(doc, dict)
            or doc.get("checkpoint_schema") != CHECKPOINT_SCHEMA_VERSION
            or doc.get("sweep") != self.sweep
            or not isinstance(doc.get("cells"), dict)
            or not isinstance(doc.get("failed"), dict)
        ):
            return False
        self.cells = dict(doc["cells"])
        self.failed = {
            str(k): dict(v)
            for k, v in doc["failed"].items()
            if isinstance(v, dict)
        }
        return bool(self.cells or self.failed)

    # ------------------------------------------------------------------
    def record_done(self, key: str, payload: object) -> None:
        """Record one completed cell; flushes every ``flush_every``."""
        self.cells[key] = payload
        self.failed.pop(key, None)
        self._pending += 1
        if self._pending >= self.flush_every:
            self.flush()

    def record_failed(self, key: str, info: dict[str, object]) -> None:
        """Record one permanently-failed cell (kept out of ``cells`` so
        a resume retries it)."""
        self.failed[key] = info
        self._pending += 1

    def flush(self) -> Path:
        """Atomically persist the manifest."""
        import repro

        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "checkpoint_schema": CHECKPOINT_SCHEMA_VERSION,
            "repro_version": repro.__version__,
            "sweep": self.sweep,
            "label": self.label,
            "total": self.total,
            "cells": self.cells,
            "failed": self.failed,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._pending = 0
        obs.inc("sweep.checkpoint_writes")
        return self.path

    def discard(self) -> None:
        """Delete the manifest (the sweep completed; the result cache —
        or the results themselves — now own the data)."""
        try:
            self.path.unlink()
        except OSError:
            pass
