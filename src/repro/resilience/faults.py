"""Deterministic, seedable fault injection for the sweep engine.

Production transcoding farms lose workers, hit flaky storage, and see
encoder crashes mid-campaign; the resilience layer must be provably
correct under exactly those failures. This module makes them
*reproducible*: instrumented call sites throughout the pipeline invoke
:func:`fault_point`, and an installed fault plan decides — purely from
the site name, a per-site call index, and an optional detail string —
whether that call raises, stalls, or kills the process.

A plan is a ``;``-separated list of clauses, each ``site`` followed by
``,field=value`` modifiers::

    sweep.compute,at=3,raise=InjectedFault
    cache.read,rate=0.25,seed=7,raise=OSError
    worker.task,match=5,kill
    encoder.profile,every=4,stall=0.2

Selectors (``at`` — 1-based call indices joined by ``|``; ``every`` —
every Nth call; ``rate`` + ``seed`` — deterministic pseudo-random
fraction of calls) pick *when* a matching site triggers; ``match``
restricts to calls whose detail string contains the substring; ``max``
caps total activations. Exactly one action per clause: ``raise=<Exc>``,
``stall=<seconds>``, or ``kill`` (``os._exit`` — models a worker process
crash, recoverable only via pool restart and checkpoint/resume).

Determinism contract: call indices are counted per site per process and
reset at the start of every worker task
(:func:`reset_counters`), so a given plan activates at the same points
on every run. The ``rate`` selector hashes (seed, site, index) — no
global RNG state is consumed.

Plans come from :func:`install_plan` (the CLI's ``--fault-plan``) or,
when no plan was installed explicitly, the ``REPRO_FAULT_PLAN``
environment variable. With no plan active a fault point is one global
load and a ``None`` check.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.obs import session as obs

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "fault_point",
    "format_fault_plan",
    "install_plan",
    "parse_fault_plan",
    "reset_counters",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status used by ``kill`` actions, distinctive in worker logs.
KILL_EXIT_STATUS = 77


class InjectedFault(RuntimeError):
    """The default exception raised by a ``raise`` fault action.

    Classified as retryable by the default
    :class:`~repro.resilience.retry.RetryPolicy`, which is what lets
    chaos tests drive the retry path without faking real I/O errors.
    """


#: Exception types a plan may name in ``raise=``. Only safe, picklable
#: stdlib types (worker-raised faults cross a process boundary).
_EXCEPTIONS: dict[str, type[Exception]] = {
    "InjectedFault": InjectedFault,
    "RuntimeError": RuntimeError,
    "OSError": OSError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "EOFError": EOFError,
    "TimeoutError": TimeoutError,
    "ConnectionError": ConnectionError,
    "MemoryError": MemoryError,
}

_ACTIONS = ("raise", "stall", "kill")


@dataclass(frozen=True)
class FaultSpec:
    """One clause of a fault plan."""

    site: str                      # fnmatch pattern over site names
    action: str = "raise"          # raise | stall | kill
    exception: str = "InjectedFault"
    stall_seconds: float = 0.05
    at: tuple[int, ...] = ()       # 1-based call indices
    every: int = 0                 # every Nth call (0 = unused)
    rate: float = 0.0              # deterministic pseudo-random fraction
    seed: int = 0
    match: str = ""                # substring the detail must contain
    max_triggers: int = 0          # 0 = unlimited

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault clause needs a site pattern")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.action == "raise" and self.exception not in _EXCEPTIONS:
            raise ValueError(
                f"unknown fault exception {self.exception!r}; "
                f"choose from {', '.join(sorted(_EXCEPTIONS))}"
            )
        if any(i < 1 for i in self.at):
            raise ValueError("fault 'at' indices are 1-based (>= 1)")
        if self.every < 0 or self.max_triggers < 0:
            raise ValueError("'every' and 'max' must be non-negative")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.stall_seconds < 0:
            raise ValueError("stall seconds must be non-negative")

    def selects(self, index: int, site: str) -> bool:
        """Whether call ``index`` (1-based) at ``site`` triggers this spec."""
        if self.at:
            return index in self.at
        if self.every:
            return index % self.every == 0
        if self.rate:
            return _unit_fraction(self.seed, site, index) < self.rate
        return True


def _unit_fraction(seed: int, token: str, index: int) -> float:
    """Deterministic uniform [0, 1) from (seed, token, index)."""
    digest = hashlib.sha256(f"{seed}|{token}|{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


# ----------------------------------------------------------------------
# Plan serialization: parse <-> format round-trips exactly.
# ----------------------------------------------------------------------

def parse_fault_plan(text: str) -> tuple[FaultSpec, ...]:
    """Parse a plan string into specs; raises ``ValueError`` on any
    malformed clause (unknown field, bad number, missing site)."""
    specs: list[FaultSpec] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        parts = [p.strip() for p in clause.split(",")]
        site = parts[0]
        if "=" in site:
            raise ValueError(
                f"fault clause must start with a site name, got {site!r}"
            )
        kwargs: dict[str, object] = {"site": site}
        action_set = False

        def set_action(action: str, **extra: object) -> None:
            nonlocal action_set
            if action_set:
                raise ValueError(
                    f"fault clause {clause!r} has more than one action"
                )
            action_set = True
            kwargs["action"] = action
            kwargs.update(extra)

        for part in parts[1:]:
            if part == "kill":
                set_action("kill")
                continue
            if "=" not in part:
                raise ValueError(f"malformed fault field {part!r}")
            name, value = part.split("=", 1)
            try:
                if name == "raise":
                    set_action("raise", exception=value)
                elif name == "stall":
                    set_action("stall", stall_seconds=float(value))
                elif name == "at":
                    kwargs["at"] = tuple(
                        sorted(int(v) for v in value.split("|") if v)
                    )
                elif name == "every":
                    kwargs["every"] = int(value)
                elif name == "rate":
                    kwargs["rate"] = float(value)
                elif name == "seed":
                    kwargs["seed"] = int(value)
                elif name == "match":
                    kwargs["match"] = value
                elif name == "max":
                    kwargs["max_triggers"] = int(value)
                else:
                    raise ValueError(f"unknown fault field {name!r}")
            except ValueError as exc:
                # Re-raise number-parse failures with the clause context.
                raise ValueError(
                    f"bad fault field {part!r} in clause {clause!r}: {exc}"
                ) from None
        specs.append(FaultSpec(**kwargs))  # type: ignore[arg-type]
    return tuple(specs)


def format_fault_plan(specs: tuple[FaultSpec, ...] | list[FaultSpec]) -> str:
    """Canonical plan string; ``parse_fault_plan(format_fault_plan(p)) == p``."""
    clauses = []
    for spec in specs:
        parts = [spec.site]
        if spec.action == "raise":
            parts.append(f"raise={spec.exception}")
        elif spec.action == "stall":
            parts.append(f"stall={spec.stall_seconds!r}")
        else:
            parts.append("kill")
        if spec.at:
            parts.append("at=" + "|".join(str(i) for i in spec.at))
        if spec.every:
            parts.append(f"every={spec.every}")
        if spec.rate:
            parts.append(f"rate={spec.rate!r}")
        if spec.seed:
            parts.append(f"seed={spec.seed}")
        if spec.match:
            parts.append(f"match={spec.match}")
        if spec.max_triggers:
            parts.append(f"max={spec.max_triggers}")
        clauses.append(",".join(parts))
    return ";".join(clauses)


# ----------------------------------------------------------------------
# Installed plan + per-process trigger state.
# ----------------------------------------------------------------------

_UNSET = object()

#: Explicit override: a plan tuple, None (explicitly off), or _UNSET
#: (fall back to the environment variable).
_override: object = _UNSET
#: Cache of the last environment-variable parse, keyed by raw string so
#: monkeypatched environments behave.
_env_raw: str | None = None
_env_plan: tuple[FaultSpec, ...] | None = None

_counts: dict[str, int] = {}
_activations: dict[int, int] = {}


def install_plan(
    plan: str | tuple[FaultSpec, ...] | list[FaultSpec] | None,
) -> tuple[FaultSpec, ...] | None:
    """Install ``plan`` process-wide (a plan string or spec sequence);
    ``None`` explicitly disables injection regardless of the
    environment. Resets trigger counters. Returns the installed specs."""
    global _override
    if plan is None:
        _override = None
    elif isinstance(plan, str):
        _override = parse_fault_plan(plan)
    else:
        _override = tuple(plan)
    reset_counters()
    return _override  # type: ignore[return-value]


def clear_plan() -> None:
    """Drop any installed plan and fall back to ``REPRO_FAULT_PLAN``."""
    global _override
    _override = _UNSET
    reset_counters()


def active_plan() -> tuple[FaultSpec, ...] | None:
    """The effective plan: the installed override, else the parsed
    environment variable, else ``None``."""
    global _env_raw, _env_plan
    if _override is not _UNSET:
        return _override  # type: ignore[return-value]
    raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if raw != _env_raw:
        _env_raw = raw
        _env_plan = parse_fault_plan(raw) if raw else None
    return _env_plan


def reset_counters(*, activations: bool = True) -> None:
    """Zero the per-site call indices (and, by default, the per-spec
    activation counts).

    Worker processes call this with ``activations=False`` at the start
    of every task: call indices are then deterministic regardless of how
    the pool schedules payloads onto workers, while ``max=`` activation
    caps keep counting for the lifetime of the process (a cap that reset
    per task would never be reachable by a retried task)."""
    _counts.clear()
    if activations:
        _activations.clear()


def fault_point(site: str, detail: str = "") -> None:
    """Declare an injectable call site.

    No-op (one global load + ``None`` check) unless a plan is active.
    With a plan: bumps the site's call index, then applies the first
    matching spec — raising its exception, sleeping its stall, or
    killing the process.
    """
    plan = active_plan()
    if not plan:
        return
    index = _counts.get(site, 0) + 1
    _counts[site] = index
    obs.inc("faults.checks")
    for spec_index, spec in enumerate(plan):
        if not fnmatchcase(site, spec.site):
            continue
        if spec.match and spec.match not in detail:
            continue
        if not spec.selects(index, site):
            continue
        if spec.max_triggers and _activations.get(spec_index, 0) >= spec.max_triggers:
            continue
        _activations[spec_index] = _activations.get(spec_index, 0) + 1
        obs.inc("faults.injected")
        obs.inc(f"faults.injected.{spec.action}")
        if spec.action == "stall":
            time.sleep(spec.stall_seconds)
            return
        if spec.action == "kill":
            os._exit(KILL_EXIT_STATUS)
        raise _EXCEPTIONS[spec.exception](
            f"injected fault at {site}[{index}]"
            + (f" ({detail})" if detail else "")
        )
