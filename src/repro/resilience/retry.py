"""Retry policies: bounded attempts, exponential backoff, deterministic
jitter, and retryable-vs-fatal exception classification.

The sweep engine applies one :class:`RetryPolicy` to per-cell work
(:func:`repro.experiments.parallel.run_tasks`) and to persistent-cache
I/O (:mod:`repro.experiments.cache`). Two properties matter for a
reproduction harness:

- **Determinism.** Jitter is derived by hashing (seed, token, attempt),
  never from global RNG state, so a fixed seed yields the exact same
  backoff schedule on every run — asserted by
  ``tests/property/test_retry_props.py``.
- **Classification.** Transient failures (injected faults, I/O errors,
  timeouts) retry; programming errors (``ValueError`` et al.) fail
  immediately so a genuinely broken cell cannot burn the retry budget.

Environment knobs (all optional, read by :meth:`RetryPolicy.from_env`):
``REPRO_RETRY_ATTEMPTS``, ``REPRO_RETRY_BASE_DELAY``,
``REPRO_RETRY_GROWTH``, ``REPRO_RETRY_MAX_DELAY``,
``REPRO_RETRY_JITTER``, ``REPRO_RETRY_SEED``.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections.abc import Callable
from dataclasses import dataclass, replace
from typing import TypeVar

from repro.obs import session as obs
from repro.resilience.faults import InjectedFault

__all__ = [
    "DEFAULT_RETRYABLE",
    "RetryPolicy",
    "call_with_retry",
]

_R = TypeVar("_R")

#: Exception types retried by default: injected chaos plus the transient
#: I/O family. Note ``FileNotFoundError`` is deliberately excluded — a
#: missing cache entry is a miss, not a transient fault.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    InjectedFault,
    TimeoutError,
    ConnectionError,
    OSError,
)

_ENV_PREFIX = "REPRO_RETRY_"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(_ENV_PREFIX + name, "").strip()
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(_ENV_PREFIX + name, "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return default


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries."""

    max_attempts: int = 3
    base_delay: float = 0.05
    growth: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5          # fraction of the raw delay, in [0, 1]
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.growth < 1.0:
            raise ValueError("growth must be >= 1 (backoff cannot shrink)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @classmethod
    def from_env(cls, **overrides: object) -> "RetryPolicy":
        """A policy built from the ``REPRO_RETRY_*`` environment knobs,
        with keyword overrides applied on top."""
        policy = cls(
            max_attempts=_env_int("ATTEMPTS", cls.max_attempts),
            base_delay=_env_float("BASE_DELAY", cls.base_delay),
            growth=_env_float("GROWTH", cls.growth),
            max_delay=_env_float("MAX_DELAY", cls.max_delay),
            jitter=_env_float("JITTER", cls.jitter),
            seed=_env_int("SEED", cls.seed),
        )
        return replace(policy, **overrides) if overrides else policy  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable)

    def raw_delay(self, attempt: int) -> float:
        """Un-jittered delay after the ``attempt``-th failure (1-based):
        ``base * growth**(attempt-1)``, capped at ``max_delay``. Monotone
        non-decreasing in ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.max_delay, self.base_delay * self.growth ** (attempt - 1))

    def backoff_delay(self, attempt: int, token: str = "") -> float:
        """Jittered delay after the ``attempt``-th failure. Always within
        ``raw * (1 ± jitter)``; deterministic in (seed, token, attempt)."""
        raw = self.raw_delay(attempt)
        if not self.jitter or not raw:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}|{token}|{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def schedule(self, token: str = "") -> list[float]:
        """Every backoff delay this policy can sleep (one fewer than
        ``max_attempts``), in order."""
        return [
            self.backoff_delay(attempt, token)
            for attempt in range(1, self.max_attempts)
        ]


def call_with_retry(
    fn: Callable[[], _R],
    *,
    policy: RetryPolicy,
    token: str = "",
    label: str = "",
    sleeper: Callable[[float], None] | None = None,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> _R:
    """Call ``fn`` under ``policy``; return its result or raise its last
    exception.

    Retries only exceptions the policy classifies as retryable, sleeping
    the jittered backoff between attempts (``token`` diversifies jitter
    across call sites). ``on_retry(attempt, exc, delay)`` fires before
    each backoff sleep. Emits ``retry.retries`` / ``retry.giveups``
    counters and the ``retry.backoff_seconds`` histogram, plus
    ``retry.retries.<label>`` when a label is given.
    """
    sleep = sleeper if sleeper is not None else time.sleep
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except Exception as exc:
            if not policy.is_retryable(exc):
                raise
            if attempt >= policy.max_attempts:
                obs.inc("retry.giveups")
                if label:
                    obs.inc(f"retry.giveups.{label}")
                raise
            delay = policy.backoff_delay(attempt, token)
            obs.inc("retry.retries")
            if label:
                obs.inc(f"retry.retries.{label}")
            obs.observe("retry.backoff_seconds", delay)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
