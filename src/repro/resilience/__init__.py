"""Fault tolerance for the sweep engine: injection, retry, checkpoint.

The paper's characterization is an 816-cell sweep plus per-preset and
per-video campaigns — long-running fan-out workloads that production
transcoding farms must survive partial failure on. This package is the
resilience layer threaded through
:mod:`repro.experiments.parallel` / :mod:`~repro.experiments.cache` /
:mod:`~repro.experiments.runner`:

- :mod:`repro.resilience.faults` — deterministic, seedable fault
  injection (``--fault-plan`` / ``REPRO_FAULT_PLAN``) so failures are
  reproducible in tests and demos;
- :mod:`repro.resilience.retry` — retry policies with exponential
  backoff, deterministic jitter, and retryable-vs-fatal classification;
- :mod:`repro.resilience.checkpoint` — sweep manifests persisted next
  to the result cache so ``repro fig3 --resume`` recomputes only
  missing cells.

Process-wide configuration mirrors the parallel engine's: the CLI's
``--fault-plan`` / ``--resume`` / ``--checkpoint-dir`` flags land in
:func:`configure`, and everything falls back to the ``REPRO_FAULT_PLAN``
/ ``REPRO_RESUME`` / ``REPRO_CHECKPOINT_DIR`` / ``REPRO_RETRY_*``
environment variables.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    SweepCheckpoint,
    sweep_id,
)
from repro.resilience.faults import (
    FaultSpec,
    InjectedFault,
    clear_plan,
    fault_point,
    format_fault_plan,
    install_plan,
    parse_fault_plan,
)
from repro.resilience.retry import RetryPolicy, call_with_retry

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "SweepCheckpoint",
    "call_with_retry",
    "checkpoint_root",
    "clear_plan",
    "configure",
    "fault_point",
    "format_fault_plan",
    "install_plan",
    "parse_fault_plan",
    "reset",
    "resume_enabled",
    "retry_policy",
    "sweep_id",
]

_RESUME_ENV = "REPRO_RESUME"
_CHECKPOINT_ENV = "REPRO_CHECKPOINT_DIR"

_UNSET = object()

#: Process-wide overrides; ``None`` means "fall back to the environment".
_retry_override: RetryPolicy | None = None
_resume_override: bool | None = None
_checkpoint_override: Path | None = None


def configure(
    *,
    fault_plan: object = _UNSET,
    retry: object = _UNSET,
    resume: object = _UNSET,
    checkpoint_dir: object = _UNSET,
) -> None:
    """Set process-wide resilience defaults (the CLI flags land here).

    ``fault_plan``: a plan string/spec sequence, ``None`` to fall back to
    ``REPRO_FAULT_PLAN``, or ``False`` to disable injection outright.
    ``retry``: a :class:`RetryPolicy`, or ``None`` for ``REPRO_RETRY_*``.
    ``resume``: ``True``/``False``, or ``None`` for ``REPRO_RESUME``.
    ``checkpoint_dir``: a directory, or ``None`` to fall back to
    ``REPRO_CHECKPOINT_DIR`` (else the cache's ``checkpoints/`` subdir).
    Arguments left unset keep their current value.
    """
    global _retry_override, _resume_override, _checkpoint_override
    if fault_plan is not _UNSET:
        if fault_plan is None:
            clear_plan()
        elif fault_plan is False:
            install_plan(None)
        else:
            install_plan(fault_plan)  # type: ignore[arg-type]
    if retry is not _UNSET:
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise TypeError("retry must be a RetryPolicy or None")
        _retry_override = retry
    if resume is not _UNSET:
        _resume_override = None if resume is None else bool(resume)
    if checkpoint_dir is not _UNSET:
        _checkpoint_override = (
            None if checkpoint_dir is None else Path(checkpoint_dir)  # type: ignore[arg-type]
        )


def retry_policy() -> RetryPolicy:
    """The configured policy, else one built from ``REPRO_RETRY_*``."""
    if _retry_override is not None:
        return _retry_override
    return RetryPolicy.from_env()


def resume_enabled() -> bool:
    """Whether sweeps should restore completed cells from checkpoint
    manifests (``--resume``, else ``REPRO_RESUME``)."""
    if _resume_override is not None:
        return _resume_override
    return os.environ.get(_RESUME_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def checkpoint_root() -> Path | None:
    """The explicitly configured checkpoint directory, else
    ``REPRO_CHECKPOINT_DIR``, else ``None`` (the runner then checkpoints
    under the persistent cache's ``checkpoints/`` subdirectory, or not
    at all when caching is off)."""
    if _checkpoint_override is not None:
        return _checkpoint_override
    env = os.environ.get(_CHECKPOINT_ENV, "").strip()
    return Path(env) if env else None


def reset() -> None:
    """Restore every resilience default (tests)."""
    global _retry_override, _resume_override, _checkpoint_override
    _retry_override = None
    _resume_override = None
    _checkpoint_override = None
    clear_plan()
