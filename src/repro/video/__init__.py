"""Video substrate: frames, synthetic sources, the vbench catalog, metrics.

The paper evaluates FFmpeg/x264 on the public vbench suite. Offline we
cannot ship the real clips, so :mod:`repro.video.vbench` procedurally
regenerates stand-ins with the published resolution, frame rate, and
entropy ordering (Table I of the paper), and :mod:`repro.video.synthetic`
provides the underlying scene generators.
"""

from repro.video.frame import Frame, FrameSequence
from repro.video.metrics import bitrate_kbps, estimate_entropy, psnr, ssim
from repro.video.synthetic import SceneSpec, generate_scene
from repro.video.vbench import VBENCH_VIDEOS, VideoInfo, load_video, video_info

__all__ = [
    "Frame",
    "FrameSequence",
    "SceneSpec",
    "generate_scene",
    "VBENCH_VIDEOS",
    "VideoInfo",
    "load_video",
    "video_info",
    "psnr",
    "ssim",
    "bitrate_kbps",
    "estimate_entropy",
]
