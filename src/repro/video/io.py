"""Minimal planar-luma video file I/O (a Y4M-like container).

The examples need a way to move clips between tools without any external
codec, so we define ``.ylm`` ("Y luma"): a one-line ASCII header followed
by raw 8-bit luma planes, one per frame.

Header format::

    YLM1 width=<int> height=<int> fps=<float> frames=<int>\\n
"""

from __future__ import annotations

import os

import numpy as np

from repro.video.frame import Frame, FrameSequence

__all__ = ["write_ylm", "read_ylm"]

_MAGIC = "YLM1"


def write_ylm(path: str | os.PathLike[str], sequence: FrameSequence) -> int:
    """Write a sequence to ``path``; returns the number of bytes written."""
    header = (
        f"{_MAGIC} width={sequence.width} height={sequence.height} "
        f"fps={sequence.fps} frames={len(sequence)}\n"
    ).encode("ascii")
    with open(path, "wb") as fh:
        fh.write(header)
        for frame in sequence:
            fh.write(frame.luma.tobytes())
    return len(header) + sequence.width * sequence.height * len(sequence)


def read_ylm(path: str | os.PathLike[str]) -> FrameSequence:
    """Read a sequence previously written by :func:`write_ylm`."""
    with open(path, "rb") as fh:
        header = fh.readline().decode("ascii", errors="replace").strip()
        fields = header.split()
        if not fields or fields[0] != _MAGIC:
            raise ValueError(f"not a {_MAGIC} file: {path}")
        params: dict[str, str] = {}
        for token in fields[1:]:
            if "=" not in token:
                raise ValueError(f"malformed header token {token!r}")
            key, value = token.split("=", 1)
            params[key] = value
        try:
            width = int(params["width"])
            height = int(params["height"])
            fps = float(params["fps"])
            n_frames = int(params["frames"])
        except (KeyError, ValueError) as exc:
            raise ValueError(f"malformed {_MAGIC} header: {header!r}") from exc
        if width <= 0 or height <= 0 or fps <= 0 or n_frames <= 0:
            raise ValueError(f"invalid geometry in header: {header!r}")
        frames = []
        plane_bytes = width * height
        for i in range(n_frames):
            raw = fh.read(plane_bytes)
            if len(raw) != plane_bytes:
                raise ValueError(f"truncated frame {i} in {path}")
            frames.append(
                Frame(np.frombuffer(raw, dtype=np.uint8).reshape(height, width))
            )
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return FrameSequence(frames=frames, fps=fps, name=name)
