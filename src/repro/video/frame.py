"""Frame and frame-sequence containers.

Frames carry 8-bit luma planes (the codec operates on luma, which is where
virtually all of the encoding work in x264 happens) plus optional
half-resolution chroma planes for completeness. Dimensions are padded to
macroblock (16 pixel) multiples by the codec, not here; the containers
preserve the source geometry exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

import numpy as np

from repro._util import check_positive

MB_SIZE = 16
"""Macroblock edge length in pixels, fixed by H.264."""


@dataclass(frozen=True)
class Frame:
    """A single video frame.

    Parameters
    ----------
    luma:
        2-D ``uint8`` array of shape ``(height, width)``.
    chroma:
        Optional pair of 2-D ``uint8`` arrays (Cb, Cr) at half resolution
        (4:2:0 subsampling). ``None`` for luma-only processing.
    """

    luma: np.ndarray
    chroma: tuple[np.ndarray, np.ndarray] | None = None

    def __post_init__(self) -> None:
        if self.luma.ndim != 2:
            raise ValueError(f"luma must be 2-D, got shape {self.luma.shape}")
        if self.luma.dtype != np.uint8:
            raise ValueError(f"luma must be uint8, got {self.luma.dtype}")
        if self.chroma is not None:
            ch, cw = (self.height + 1) // 2, (self.width + 1) // 2
            for plane in self.chroma:
                if plane.shape != (ch, cw):
                    raise ValueError(
                        f"chroma plane shape {plane.shape} != expected {(ch, cw)}"
                    )
                if plane.dtype != np.uint8:
                    raise ValueError("chroma planes must be uint8")

    @property
    def height(self) -> int:
        return int(self.luma.shape[0])

    @property
    def width(self) -> int:
        return int(self.luma.shape[1])

    @property
    def resolution(self) -> tuple[int, int]:
        """``(width, height)`` in pixels."""
        return (self.width, self.height)

    @property
    def n_pixels(self) -> int:
        return self.height * self.width

    def padded_luma(self, multiple: int = MB_SIZE) -> np.ndarray:
        """Luma plane edge-padded so both dimensions divide ``multiple``."""
        h, w = self.luma.shape
        ph = (-h) % multiple
        pw = (-w) % multiple
        if ph == 0 and pw == 0:
            return self.luma
        return np.pad(self.luma, ((0, ph), (0, pw)), mode="edge")

    def downscale(self, factor: int) -> Frame:
        """Block-average downscale by an integer factor (luma only)."""
        check_positive("factor", factor)
        h = (self.height // factor) * factor
        w = (self.width // factor) * factor
        if h == 0 or w == 0:
            raise ValueError(f"frame {self.resolution} too small for factor {factor}")
        block = self.luma[:h, :w].reshape(h // factor, factor, w // factor, factor)
        out = block.astype(np.uint16).mean(axis=(1, 3)).astype(np.uint8)
        return Frame(out)


@dataclass
class FrameSequence:
    """An ordered sequence of equally sized frames with a frame rate."""

    frames: list[Frame]
    fps: float
    name: str = "unnamed"
    _validated: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("fps", self.fps)
        if not self.frames:
            raise ValueError("FrameSequence requires at least one frame")
        first = self.frames[0].resolution
        for i, frame in enumerate(self.frames):
            if frame.resolution != first:
                raise ValueError(
                    f"frame {i} resolution {frame.resolution} != {first}"
                )
        self._validated = True

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __getitem__(self, index: int) -> Frame:
        return self.frames[index]

    @property
    def resolution(self) -> tuple[int, int]:
        return self.frames[0].resolution

    @property
    def width(self) -> int:
        return self.frames[0].width

    @property
    def height(self) -> int:
        return self.frames[0].height

    @property
    def duration_seconds(self) -> float:
        return len(self.frames) / self.fps

    def lumas(self) -> np.ndarray:
        """All luma planes stacked into one ``(n, h, w)`` array."""
        return np.stack([f.luma for f in self.frames])

    def downscale(self, factor: int) -> FrameSequence:
        """Downscale every frame; used to build proxy-scale sweep inputs."""
        return FrameSequence(
            frames=[f.downscale(factor) for f in self.frames],
            fps=self.fps,
            name=f"{self.name}@1/{factor}",
        )

    def clip(self, n_frames: int) -> FrameSequence:
        """First ``n_frames`` frames as a new sequence."""
        check_positive("n_frames", n_frames)
        return FrameSequence(
            frames=self.frames[:n_frames], fps=self.fps, name=self.name
        )

    @staticmethod
    def from_lumas(
        lumas: Sequence[np.ndarray] | np.ndarray, fps: float, name: str = "unnamed"
    ) -> FrameSequence:
        """Build a sequence from an iterable/stack of uint8 luma planes."""
        return FrameSequence(
            frames=[Frame(np.asarray(p, dtype=np.uint8)) for p in lumas],
            fps=fps,
            name=name,
        )
