"""Video quality and size metrics: PSNR, SSIM, bitrate, entropy estimate.

These are the three corners of the paper's Figure 2 triangle — quality
(PSNR in dB), size (bitrate in Kbps), and speed (time, measured elsewhere)
— plus a vbench-style entropy estimator used to sanity-check that our
synthetic stand-ins preserve the published complexity ordering.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive
from repro.video.frame import Frame, FrameSequence

__all__ = ["psnr", "psnr_sequence", "ssim", "bitrate_kbps", "estimate_entropy"]

_MAX_PSNR_DB = 100.0
"""PSNR reported for identical inputs (MSE of zero)."""


def psnr(reference: np.ndarray | Frame, test: np.ndarray | Frame) -> float:
    """Peak signal-to-noise ratio between two 8-bit luma planes, in dB."""
    ref = reference.luma if isinstance(reference, Frame) else np.asarray(reference)
    out = test.luma if isinstance(test, Frame) else np.asarray(test)
    if ref.shape != out.shape:
        raise ValueError(f"shape mismatch {ref.shape} vs {out.shape}")
    mse = float(np.mean((ref.astype(np.float64) - out.astype(np.float64)) ** 2))
    if mse == 0.0:
        return _MAX_PSNR_DB
    return float(10.0 * np.log10(255.0**2 / mse))


def psnr_sequence(reference: FrameSequence, test: FrameSequence) -> float:
    """Sequence PSNR: computed from the pooled MSE over all frames."""
    if len(reference) != len(test):
        raise ValueError(f"length mismatch {len(reference)} vs {len(test)}")
    total_sq = 0.0
    total_px = 0
    for ref, out in zip(reference, test):
        diff = ref.luma.astype(np.float64) - out.luma.astype(np.float64)
        total_sq += float(np.sum(diff * diff))
        total_px += diff.size
    mse = total_sq / total_px
    if mse == 0.0:
        return _MAX_PSNR_DB
    return float(10.0 * np.log10(255.0**2 / mse))


def ssim(reference: np.ndarray | Frame, test: np.ndarray | Frame) -> float:
    """Global (single-window) structural similarity of two luma planes.

    A lightweight SSIM variant: statistics are pooled over 8x8 tiles, which
    is enough for ranking codec settings without a full Gaussian pyramid.
    """
    ref = reference.luma if isinstance(reference, Frame) else np.asarray(reference)
    out = test.luma if isinstance(test, Frame) else np.asarray(test)
    if ref.shape != out.shape:
        raise ValueError(f"shape mismatch {ref.shape} vs {out.shape}")
    x = ref.astype(np.float64)
    y = out.astype(np.float64)
    tile = 8
    h = (x.shape[0] // tile) * tile
    w = (x.shape[1] // tile) * tile
    if h == 0 or w == 0:
        raise ValueError("frames too small for 8x8 SSIM tiles")

    def tiles(a: np.ndarray) -> np.ndarray:
        return a[:h, :w].reshape(h // tile, tile, w // tile, tile).transpose(
            0, 2, 1, 3
        ).reshape(-1, tile * tile)

    tx, ty = tiles(x), tiles(y)
    mx, my = tx.mean(axis=1), ty.mean(axis=1)
    vx, vy = tx.var(axis=1), ty.var(axis=1)
    cov = ((tx - mx[:, None]) * (ty - my[:, None])).mean(axis=1)
    c1 = (0.01 * 255) ** 2
    c2 = (0.03 * 255) ** 2
    score = ((2 * mx * my + c1) * (2 * cov + c2)) / (
        (mx**2 + my**2 + c1) * (vx + vy + c2)
    )
    return float(np.mean(score))


def bitrate_kbps(total_bits: int, n_frames: int, fps: float) -> float:
    """Average bitrate in kilobits/second for ``total_bits`` over a clip."""
    check_positive("n_frames", n_frames)
    check_positive("fps", fps)
    if total_bits < 0:
        raise ValueError("total_bits must be >= 0")
    seconds = n_frames / fps
    return total_bits / seconds / 1000.0


def estimate_entropy(sequence: FrameSequence) -> float:
    """A vbench-style complexity score for a clip, on roughly a 0-8 scale.

    vbench defines entropy as the bits needed for visually lossless
    encoding. We approximate it with the information content of the
    motion-compensated-free temporal residual plus spatial gradients: clips
    with heavy motion and fine texture need many bits, static smooth clips
    need few. The absolute scale is calibrated so that the synthetic
    catalog spans roughly the published 0.2-7.7 range.
    """
    lumas = sequence.lumas().astype(np.float64)
    # Temporal complexity: mean absolute frame difference.
    if len(sequence) > 1:
        temporal = float(np.mean(np.abs(np.diff(lumas, axis=0))))
    else:
        temporal = 0.0
    # Spatial complexity: mean gradient magnitude.
    gy = np.abs(np.diff(lumas, axis=1)).mean()
    gx = np.abs(np.diff(lumas, axis=2)).mean()
    spatial = float((gx + gy) / 2.0)
    # Empirical calibration: desktop-like content scores ~0.2, holi-like ~7.
    score = 0.18 * temporal + 0.08 * spatial
    return float(score)
