"""Procedural scene generation for synthetic benchmark videos.

The vbench clips cannot be redistributed, so we synthesize stand-ins whose
*complexity knobs* map onto the paper's single complexity axis (entropy):

- ``texture_detail`` — spatial high-frequency content (hurts intra coding),
- ``motion_magnitude`` — how far objects move per frame (hurts inter search),
- ``motion_irregularity`` — how unpredictable the motion is (defeats simple
  predictors, enlarging residuals),
- ``scene_cut_period`` — frames between hard cuts (forces I-frames),
- ``noise_level`` — sensor-like noise (incompressible energy).

A scene is a textured background plus a set of moving textured sprites, with
optional global pan and periodic cuts to a re-seeded scene. Everything is
deterministic given the spec's ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._util import check_positive, check_range, rng_for
from repro.video.frame import Frame, FrameSequence

__all__ = ["SceneSpec", "generate_scene"]


@dataclass(frozen=True)
class SceneSpec:
    """Parameters controlling a synthetic scene.

    All complexity knobs live in ``[0, 1]`` except ``scene_cut_period``
    (frames between cuts; 0 disables cuts) and the geometry fields.
    """

    width: int = 160
    height: int = 96
    n_frames: int = 12
    fps: float = 30.0
    texture_detail: float = 0.5
    motion_magnitude: float = 0.5
    motion_irregularity: float = 0.3
    scene_cut_period: int = 0
    noise_level: float = 0.1
    n_sprites: int = 6
    seed: int = 0
    name: str = "scene"

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("height", self.height)
        check_positive("n_frames", self.n_frames)
        check_positive("fps", self.fps)
        for field_name in (
            "texture_detail",
            "motion_magnitude",
            "motion_irregularity",
            "noise_level",
        ):
            check_range(field_name, getattr(self, field_name), 0.0, 1.0)
        if self.scene_cut_period < 0:
            raise ValueError("scene_cut_period must be >= 0")
        if self.n_sprites < 0:
            raise ValueError("n_sprites must be >= 0")

    def scaled(self, width: int, height: int, n_frames: int) -> SceneSpec:
        """Same scene content knobs at a different geometry (proxy scale)."""
        return replace(self, width=width, height=height, n_frames=n_frames)


def _texture(rng: np.random.Generator, h: int, w: int, detail: float) -> np.ndarray:
    """Multi-octave value-noise texture in ``[0, 255]`` float32.

    ``detail`` shifts energy into higher octaves: 0 gives smooth gradients
    (easy intra prediction), 1 gives near-white-noise texture.
    """
    out = np.zeros((h, w), dtype=np.float32)
    total_weight = 0.0
    # Octave cell sizes from coarse (32 px) down to fine (2 px).
    for octave, cell in enumerate([32, 16, 8, 4, 2]):
        gh, gw = max(2, h // cell + 2), max(2, w // cell + 2)
        grid = rng.random((gh, gw), dtype=np.float32)
        ys = np.linspace(0, gh - 1.001, h, dtype=np.float32)
        xs = np.linspace(0, gw - 1.001, w, dtype=np.float32)
        y0 = ys.astype(np.int64)
        x0 = xs.astype(np.int64)
        fy = (ys - y0)[:, None]
        fx = (xs - x0)[None, :]
        g00 = grid[np.ix_(y0, x0)]
        g01 = grid[np.ix_(y0, x0 + 1)]
        g10 = grid[np.ix_(y0 + 1, x0)]
        g11 = grid[np.ix_(y0 + 1, x0 + 1)]
        layer = (
            g00 * (1 - fy) * (1 - fx)
            + g01 * (1 - fy) * fx
            + g10 * fy * (1 - fx)
            + g11 * fy * fx
        )
        # Low detail weights coarse octaves; high detail weights fine ones.
        weight = (1.0 - detail) * (0.5**octave) + detail * (0.5 ** (4 - octave))
        out += weight * layer
        total_weight += weight
    out /= total_weight
    return out * 255.0


@dataclass
class _Sprite:
    patch: np.ndarray  # float32 texture patch
    x: float
    y: float
    vx: float
    vy: float


def _make_sprites(
    rng: np.random.Generator, spec: SceneSpec
) -> list[_Sprite]:
    sprites = []
    max_speed = spec.motion_magnitude * (1.0 + min(spec.width, spec.height) / 8.0)
    for _ in range(spec.n_sprites):
        size = int(rng.integers(max(4, spec.height // 8), max(6, spec.height // 3)))
        patch = _texture(rng, size, size, spec.texture_detail)
        angle = rng.uniform(0, 2 * np.pi)
        speed = rng.uniform(0.3, 1.0) * max_speed
        sprites.append(
            _Sprite(
                patch=patch,
                x=float(rng.uniform(0, spec.width - size)),
                y=float(rng.uniform(0, spec.height - size)),
                vx=float(np.cos(angle) * speed),
                vy=float(np.sin(angle) * speed),
            )
        )
    return sprites


def _composite(
    background: np.ndarray, sprites: list[_Sprite], pan: tuple[float, float]
) -> np.ndarray:
    h, w = background.shape
    px, py = pan
    # Global pan: roll the background by integer pixels.
    canvas = np.roll(background, (int(round(py)), int(round(px))), axis=(0, 1)).copy()
    for sprite in sprites:
        sh, sw = sprite.patch.shape
        x0 = int(round(sprite.x)) % w
        y0 = int(round(sprite.y)) % h
        xs = (np.arange(sw) + x0) % w
        ys = (np.arange(sh) + y0) % h
        canvas[np.ix_(ys, xs)] = sprite.patch
    return canvas


def _chroma_from_luma(canvas: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Derive half-resolution Cb/Cr planes from the luma field.

    Chroma tracks the scene structure (sprites carry their own tint) but
    with lower contrast, like natural footage: Cb/Cr are centered at 128
    with gentle spatially-correlated excursions.
    """
    h = (canvas.shape[0] // 2) * 2
    w = (canvas.shape[1] // 2) * 2
    ds = (
        canvas[:h:2, :w:2]
        + canvas[1:h:2, :w:2]
        + canvas[:h:2, 1:w:2]
        + canvas[1:h:2, 1:w:2]
    ) / 4.0
    centered = ds - float(ds.mean())
    cb = np.clip(128.0 + centered / 4.0, 0, 255).astype(np.uint8)
    cr = np.clip(128.0 - centered / 6.0, 0, 255).astype(np.uint8)
    # Match Frame's expected chroma geometry for odd luma dimensions.
    ch = (canvas.shape[0] + 1) // 2
    cw = (canvas.shape[1] + 1) // 2
    cb = np.pad(cb, ((0, ch - cb.shape[0]), (0, cw - cb.shape[1])), mode="edge")
    cr = np.pad(cr, ((0, ch - cr.shape[0]), (0, cw - cr.shape[1])), mode="edge")
    return cb, cr


def generate_scene(spec: SceneSpec) -> FrameSequence:
    """Generate a deterministic synthetic clip from ``spec``.

    The returned sequence has exactly ``spec.n_frames`` frames of
    ``spec.width`` x ``spec.height`` luma at ``spec.fps``.
    """
    rng = rng_for("scene", spec.seed, spec.name)
    background = _texture(rng, spec.height, spec.width, spec.texture_detail)
    sprites = _make_sprites(rng, spec)
    pan_speed = spec.motion_magnitude * 2.0
    pan_angle = rng.uniform(0, 2 * np.pi)
    pan = [0.0, 0.0]

    frames: list[Frame] = []
    for t in range(spec.n_frames):
        if (
            spec.scene_cut_period > 0
            and t > 0
            and t % spec.scene_cut_period == 0
        ):
            # Hard cut: new background and sprites (forces I-frame upstream).
            background = _texture(rng, spec.height, spec.width, spec.texture_detail)
            sprites = _make_sprites(rng, spec)
            pan_angle = rng.uniform(0, 2 * np.pi)
        canvas = _composite(background, sprites, (pan[0], pan[1]))
        if spec.noise_level > 0:
            noise = rng.normal(0.0, spec.noise_level * 24.0, canvas.shape)
            canvas = canvas + noise
        luma = np.clip(canvas, 0, 255).astype(np.uint8)
        frames.append(Frame(luma, chroma=_chroma_from_luma(canvas)))
        # Advance motion for the next frame.
        pan[0] += pan_speed * np.cos(pan_angle)
        pan[1] += pan_speed * np.sin(pan_angle)
        for sprite in sprites:
            if spec.motion_irregularity > 0:
                jitter = spec.motion_irregularity * spec.motion_magnitude * 2.0
                sprite.vx += float(rng.normal(0, jitter))
                sprite.vy += float(rng.normal(0, jitter))
            sprite.x += sprite.vx
            sprite.y += sprite.vy
    return FrameSequence(frames=frames, fps=spec.fps, name=spec.name)
