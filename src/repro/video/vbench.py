"""The vbench video catalog (paper Table I) with synthetic stand-ins.

vbench [Lottarini et al., ASPLOS'18] selects 15 five-second clips that are
representative of cloud transcoding corpora; the paper also adds the Big
Buck Bunny clip. The real clips are not redistributable, so
:func:`load_video` procedurally synthesizes a clip whose geometry and
frame rate match Table I exactly, and whose *content complexity* is driven
by the published entropy value through :class:`repro.video.synthetic.SceneSpec`.

Entropy is vbench's measure of how many bits visually-lossless encoding
needs; in our generators it scales texture detail, motion magnitude and
irregularity, and scene-cut frequency, so the across-video trends of the
paper's Figure 7 are driven by the same axis.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro._util import check_positive
from repro.video.frame import FrameSequence
from repro.video.synthetic import SceneSpec, generate_scene

__all__ = ["VideoInfo", "VBENCH_VIDEOS", "ALL_VIDEOS", "video_info", "load_video"]


@dataclass(frozen=True)
class VideoInfo:
    """One row of the paper's Table I."""

    full_name: str
    short_name: str
    width: int
    height: int
    fps: int
    entropy: float

    @property
    def resolution_label(self) -> str:
        """Marketing-style vertical resolution label, e.g. ``"1080p"``."""
        return f"{self.height}p"

    @property
    def resolution(self) -> tuple[int, int]:
        return (self.width, self.height)


def _info(full: str, short: str, w: int, h: int, fps: int, entropy: float) -> VideoInfo:
    return VideoInfo(full, short, w, h, fps, entropy)


#: Table I of the paper, verbatim (full name, short name, resolution, FPS,
#: entropy), in the paper's entropy-sorted order.
VBENCH_VIDEOS: tuple[VideoInfo, ...] = (
    _info("desktop_1280x720_30.mkv", "desktop", 1280, 720, 30, 0.2),
    _info("presentation_1920x1080_25.mkv", "presentation", 1920, 1080, 25, 0.2),
    _info("bike_1280x720_29.mkv", "bike", 1280, 720, 29, 0.9),
    _info("funny_1920x1080_30.mkv", "funny", 1920, 1080, 30, 2.5),
    _info("cricket_1280x720_30.mkv", "cricket", 1280, 720, 30, 3.4),
    _info("house_1920x1080_30.mkv", "house", 1920, 1080, 30, 3.6),
    _info("game1_1920x1080_60.mkv", "game1", 1920, 1080, 60, 4.6),
    _info("game2_1280x720_30.mkv", "game2", 1280, 720, 30, 4.9),
    _info("girl_1280x720_30.mkv", "girl", 1280, 720, 30, 5.9),
    _info("chicken_3840x2160_30.mkv", "chicken", 3840, 2160, 30, 5.9),
    _info("game3_1280x720_59.mkv", "game3", 1280, 720, 59, 6.1),
    _info("cat_854x480_29.mkv", "cat", 854, 480, 29, 6.8),
    _info("holi_854x480_30.mkv", "holi", 854, 480, 30, 7.0),
    _info("landscape_1920x1080_29.mkv", "landscape", 1920, 1080, 29, 7.2),
    _info("hall_1920x1080_29.mkv", "hall", 1920, 1080, 29, 7.7),
)

#: Big Buck Bunny, the extra clip the paper studies alongside vbench.
BIG_BUCK_BUNNY = _info("big_buck_bunny_1920x1080_30.mkv", "bbb", 1920, 1080, 30, 3.0)

ALL_VIDEOS: tuple[VideoInfo, ...] = VBENCH_VIDEOS + (BIG_BUCK_BUNNY,)

_BY_SHORT_NAME = {v.short_name: v for v in ALL_VIDEOS}

MAX_ENTROPY = 8.0
"""Normalization ceiling for entropy → scene-knob mapping."""


def video_info(short_name: str) -> VideoInfo:
    """Look up a catalog entry by short name (e.g. ``"desktop"``)."""
    try:
        return _BY_SHORT_NAME[short_name]
    except KeyError:
        raise KeyError(
            f"unknown video {short_name!r}; known: {sorted(_BY_SHORT_NAME)}"
        ) from None


def scene_spec_for(
    info: VideoInfo,
    *,
    width: int | None = None,
    height: int | None = None,
    n_frames: int | None = None,
) -> SceneSpec:
    """Map a catalog entry's entropy onto synthetic scene knobs.

    Low-entropy clips (``desktop``, ``presentation``) become near-static,
    smooth scenes; high-entropy clips (``holi``, ``hall``) get heavy
    irregular motion, fine texture, and periodic scene cuts — matching the
    paper's description of entropy ("more motion, or frequent scene
    transition").
    """
    e = min(info.entropy, MAX_ENTROPY) / MAX_ENTROPY
    w = width if width is not None else info.width
    h = height if height is not None else info.height
    n = n_frames if n_frames is not None else int(round(info.fps * 5))
    # Scene cuts only appear for genuinely complex content (entropy > 2.5ish).
    cut_period = 0
    if info.entropy > 2.5:
        # More entropy → more frequent cuts, between ~1/3 and ~2 seconds.
        cut_period = max(4, int(round((1.8 - 1.4 * e) * info.fps)))
    return SceneSpec(
        width=w,
        height=h,
        n_frames=n,
        fps=float(info.fps),
        texture_detail=0.12 + 0.75 * e,
        motion_magnitude=0.05 + 0.85 * e,
        motion_irregularity=0.6 * e,
        scene_cut_period=cut_period,
        noise_level=0.03 + 0.25 * e,
        n_sprites=3 + int(round(7 * e)),
        # A *stable* digest, not hash(): str hashing is randomized per
        # process (PYTHONHASHSEED), which would make clips — and every
        # downstream sweep record — differ between a run and its
        # checkpoint/resume continuation in another process.
        seed=int.from_bytes(
            hashlib.sha256(info.short_name.encode("utf-8")).digest()[:2], "big"
        ),
        name=info.short_name,
    )


def load_video(
    short_name: str,
    *,
    scale: str = "proxy",
    width: int | None = None,
    height: int | None = None,
    n_frames: int | None = None,
) -> FrameSequence:
    """Synthesize the stand-in clip for a catalog entry.

    Parameters
    ----------
    scale:
        ``"proxy"`` (default) renders a small aspect-preserving proxy
        suitable for simulation sweeps; ``"full"`` renders at the Table I
        resolution and five-second duration (slow for 1080p+).
    width, height, n_frames:
        Explicit geometry overrides (take precedence over ``scale``).
    """
    info = video_info(short_name)
    if scale not in ("proxy", "full"):
        raise ValueError(f"scale must be 'proxy' or 'full', got {scale!r}")
    if scale == "proxy":
        proxy_h = 96
        proxy_w = max(32, int(round(info.width / info.height * proxy_h / 16)) * 16)
        w = width if width is not None else proxy_w
        h = height if height is not None else proxy_h
        n = n_frames if n_frames is not None else 10
    else:
        w = width if width is not None else info.width
        h = height if height is not None else info.height
        n = n_frames if n_frames is not None else int(round(info.fps * 5))
    check_positive("n_frames", n)
    spec = scene_spec_for(info, width=w, height=h, n_frames=n)
    return generate_scene(spec)
