"""Graphite: polyhedral loop-nest analysis and transformation.

GCC's Graphite pass (enabled with ``-floop-interchange
-ftree-loop-distribution -floop-block``) analyzes loop nests in the
polyhedral model and applies tiling, fusion, and interchange where the
dependence polyhedra allow. Our kernels carry :class:`LoopNest` metadata
(depth, legality of reordering, stride) from :mod:`repro.trace.kernels`;
this module performs the legality check and maps each legal nest onto the
concrete access-stream transformation the encoder implements:

- transform/quant/entropy producer-consumer nests → ``tile_transform``
  (macroblock-sized scratch reuse instead of a frame-sized stream),
- the two deblocking passes → ``fuse_deblock`` (one fused plane walk),
- the column-major interpolation nest → ``interchange_interp``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.encoder import LoopOptimizations
from repro.trace.program import Kernel

__all__ = ["GraphiteReport", "analyze_kernels", "graphite_loop_opts", "GRAPHITE_FLAGS"]

GRAPHITE_FLAGS = ("-floop-interchange", "-ftree-loop-distribution", "-floop-block")

#: Which encoder-level transformation each tileable kernel unlocks.
_KERNEL_TO_TRANSFORM = {
    "dct4": "tile_transform",
    "idct4": "tile_transform",
    "quant": "tile_transform",
    "mc_copy": "tile_transform",
    "deblock": "fuse_deblock",
    "me_interp": "interchange_interp",
}


@dataclass(frozen=True)
class GraphiteReport:
    """What the polyhedral analysis decided, kernel by kernel."""

    transformed: tuple[str, ...]  # kernels whose nests were transformed
    rejected: tuple[str, ...]  # nests where reordering is illegal
    loop_opts: LoopOptimizations

    def describe(self) -> str:
        return (
            f"graphite: transformed {len(self.transformed)} nests "
            f"({', '.join(self.transformed)}); "
            f"rejected {len(self.rejected)} (dependence-bound)"
        )


def analyze_kernels(kernels: dict[str, Kernel]) -> GraphiteReport:
    """Run the legality analysis over a kernel catalog.

    A nest is transformable when it is at least 2-deep (tiling a single
    loop is pointless) and its metadata marks the traversal order as free
    of loop-carried dependences.
    """
    transformed: list[str] = []
    rejected: list[str] = []
    enabled = {"tile_transform": False, "fuse_deblock": False, "interchange_interp": False}
    for name in sorted(kernels):
        nest = kernels[name].loop_nest
        if nest.depth < 2:
            continue  # nothing to transform
        if not nest.tileable:
            rejected.append(name)
            continue
        transform = _KERNEL_TO_TRANSFORM.get(name)
        if transform is None:
            rejected.append(name)
            continue
        transformed.append(name)
        enabled[transform] = True
    return GraphiteReport(
        transformed=tuple(transformed),
        rejected=tuple(rejected),
        loop_opts=LoopOptimizations(**enabled),
    )


def graphite_loop_opts(kernels: dict[str, Kernel]) -> LoopOptimizations:
    """The loop transformations Graphite applies to this program."""
    return analyze_kernels(kernels).loop_opts
