"""Build pipeline: compile the encoder "binary" with optimization flags.

A :class:`Build` is what a compiler invocation produces in the paper's
methodology: a program (code layout) plus the loop transformations baked
into it. Three builds reproduce §III-D:

- ``build_default()``  — plain -O2: source-order layout, no loop opts;
- ``build_autofdo(profile)`` — recompiled with a training profile;
- ``build_graphite()`` — recompiled with the Graphite flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codec.encoder import LoopOptimizations
from repro.optim.autofdo import autofdo_optimize
from repro.optim.graphite import GRAPHITE_FLAGS, analyze_kernels
from repro.optim.profile import ExecutionProfile
from repro.trace.kernels import build_program
from repro.trace.program import Program

__all__ = ["Build", "build_default", "build_autofdo", "build_graphite"]


@dataclass(frozen=True)
class Build:
    """One compiled configuration of the encoder."""

    name: str
    program: Program
    loop_opts: LoopOptimizations = field(default_factory=LoopOptimizations)
    flags: tuple[str, ...] = ()

    def describe(self) -> str:
        flag_str = " ".join(self.flags) if self.flags else "-O2"
        return f"{self.name}: {flag_str} layout={self.program.layout.description}"


def build_default() -> Build:
    """The stock binary the paper's baseline measurements use."""
    return Build(name="default", program=build_program(), flags=("-O2",))


def build_autofdo(profile: ExecutionProfile) -> Build:
    """Recompile with AutoFDO using a collected training profile."""
    program = autofdo_optimize(build_program(), profile)
    return Build(
        name="autofdo",
        program=program,
        flags=("-O2", "-fauto-profile=perf.afdo"),
    )


def build_graphite() -> Build:
    """Recompile with GCC's polyhedral optimizer enabled."""
    program = build_program()
    report = analyze_kernels(program.kernels)
    return Build(
        name="graphite",
        program=program,
        loop_opts=report.loop_opts,
        flags=("-O2",) + GRAPHITE_FLAGS,
    )
