"""AutoFDO: profile-guided code re-layout plus branch hints.

Given an execution profile, the optimizer rebuilds the code layout the
way AutoFDO's hot/cold splitting and basic-block reordering do:

1. every kernel's hot lines are packed *contiguously* (no cold code
   interleaved in the fetch path), so one invocation's fetch footprint
   shrinks from the full hot+cold extent to just the hot lines;
2. kernels are placed in decreasing-heat order, clustering the hot
   working set into the smallest possible address range;
3. cold lines are exiled to a far "cold section" after all hot code;
4. the layout carries ``branch_hints`` so the branch model can credit
   profile-seeded static predictions.

Unprofiled kernels keep their pessimistic interleaved footprint — AutoFDO
can only optimize what the training run exercised, which is why the
paper trains it on representative transcodes.
"""

from __future__ import annotations

import numpy as np

from repro.optim.profile import ExecutionProfile
from repro.trace.program import CACHE_LINE, CODE_BASE, CodeLayout, Program

__all__ = ["autofdo_optimize", "fdo_layout"]

#: Kernels below this heat are treated as cold (not re-laid-out).
_HEAT_THRESHOLD = 1e-4


def fdo_layout(program: Program, profile: ExecutionProfile) -> CodeLayout:
    """Build the profile-optimized code layout."""
    kernels = program.kernels
    hot_order = [k for k in profile.hottest_first() if k in kernels]
    hot_set = {k for k in hot_order if profile.heat(k) >= _HEAT_THRESHOLD}
    remaining = [k for k in sorted(kernels) if k not in hot_set]

    hot_addrs: dict[str, np.ndarray] = {}
    cold_addrs: dict[str, np.ndarray] = {}
    fetch_addrs: dict[str, np.ndarray] = {}
    cursor = 0

    # Hot section: hot lines only, contiguous, hottest kernels first.
    for name in hot_order:
        if name not in hot_set:
            continue
        k = kernels[name]
        lines = np.arange(cursor, cursor + k.hot_lines, dtype=np.int64)
        hot_addrs[name] = CODE_BASE + lines * CACHE_LINE
        fetch_addrs[name] = hot_addrs[name]
        cursor += k.hot_lines

    # Cold section: everything else, far away.
    cold_cursor = cursor + 4096  # leave a gap: cold code on its own pages
    for name in hot_order:
        if name not in hot_set:
            continue
        k = kernels[name]
        lines = np.arange(cold_cursor, cold_cursor + k.cold_lines, dtype=np.int64)
        cold_addrs[name] = CODE_BASE + lines * CACHE_LINE
        cold_cursor += k.cold_lines

    # Unprofiled kernels keep interleaved (pessimistic) layout at the end.
    for name in remaining:
        k = kernels[name]
        extent = k.total_lines
        lines = np.arange(cold_cursor, cold_cursor + extent, dtype=np.int64)
        addrs = CODE_BASE + lines * CACHE_LINE
        hot_addrs[name] = addrs[: k.hot_lines]
        cold_addrs[name] = addrs[k.hot_lines :]
        fetch_addrs[name] = addrs
        cold_cursor += extent

    return CodeLayout(
        hot_line_addrs=hot_addrs,
        cold_line_addrs=cold_addrs,
        fetch_line_addrs=fetch_addrs,
        total_lines=cold_cursor,
        description=f"autofdo({profile.n_runs} training runs)",
        branch_hints=True,
    )


def autofdo_optimize(program: Program, profile: ExecutionProfile) -> Program:
    """Recompile: same kernels, profile-optimized layout."""
    return program.with_layout(fdo_layout(program, profile))
