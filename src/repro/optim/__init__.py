"""Compiler-optimization models: AutoFDO and Graphite (paper §III-D).

AutoFDO [Chen et al., CGO'16] uses a sampled execution profile to re-lay
out the binary: hot basic blocks are packed contiguously (shrinking the
i-cache fetch footprint) and branch probabilities seed better static
decisions. Graphite [Pop et al., GCC Summit'06] applies polyhedral loop
transformations — tiling, fusion, interchange — improving data-cache
locality. Both are modeled against the same mechanisms in our simulator:
AutoFDO rewrites the :class:`~repro.trace.program.CodeLayout`, Graphite
rewrites the encoder's loop traversal / scratch-buffer access streams.
"""

from repro.optim.autofdo import autofdo_optimize
from repro.optim.graphite import graphite_loop_opts
from repro.optim.pipeline import Build, build_autofdo, build_default, build_graphite
from repro.optim.profile import ExecutionProfile, collect_profile

__all__ = [
    "ExecutionProfile",
    "collect_profile",
    "autofdo_optimize",
    "graphite_loop_opts",
    "Build",
    "build_default",
    "build_autofdo",
    "build_graphite",
]
