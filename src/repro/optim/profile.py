"""Execution profiles: what ``perf record`` hands to AutoFDO.

An :class:`ExecutionProfile` aggregates, per kernel, how many dynamic
instructions it retired and how many times it was invoked, plus the
taken-bias of every recorded branch site. AutoFDO consumes it to rank
code by heat and to seed branch hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.events import BranchEvent, TraceStream

__all__ = ["ExecutionProfile", "collect_profile"]


@dataclass
class ExecutionProfile:
    """Aggregated sampled profile of one or more training runs."""

    kernel_instructions: dict[str, float] = field(default_factory=dict)
    kernel_calls: dict[str, int] = field(default_factory=dict)
    # site -> (taken_count, total_count)
    branch_bias: dict[str, tuple[float, float]] = field(default_factory=dict)
    total_instructions: float = 0.0
    n_runs: int = 0

    def merge_stream(self, stream: TraceStream) -> None:
        """Fold one training run's trace into the profile."""
        for kernel, mix in stream.instr_by_kernel.items():
            self.kernel_instructions[kernel] = (
                self.kernel_instructions.get(kernel, 0.0) + mix.total
            )
        for kernel, calls in stream.kernel_calls.items():
            self.kernel_calls[kernel] = self.kernel_calls.get(kernel, 0) + calls
        for event in stream.iter_events():
            if isinstance(event, BranchEvent):
                taken = float(np.count_nonzero(event.outcomes)) * event.weight
                total = float(event.outcomes.size) * event.weight
                t0, n0 = self.branch_bias.get(event.site, (0.0, 0.0))
                self.branch_bias[event.site] = (t0 + taken, n0 + total)
        self.total_instructions += stream.total_instructions
        self.n_runs += 1

    def heat(self, kernel: str) -> float:
        """Fraction of profiled instructions spent in ``kernel``."""
        if self.total_instructions <= 0:
            return 0.0
        return self.kernel_instructions.get(kernel, 0.0) / self.total_instructions

    def hottest_first(self) -> list[str]:
        """Kernel names ordered by decreasing heat."""
        return sorted(
            self.kernel_instructions,
            key=lambda k: -self.kernel_instructions[k],
        )

    def site_bias(self, site: str) -> float:
        """Taken probability of a branch site (0.5 if unseen)."""
        taken, total = self.branch_bias.get(site, (0.0, 0.0))
        if total <= 0:
            return 0.5
        return taken / total


def collect_profile(streams: list[TraceStream]) -> ExecutionProfile:
    """Build a profile from training-run traces (the ``perf`` step)."""
    if not streams:
        raise ValueError("collect_profile requires at least one trace")
    profile = ExecutionProfile()
    for stream in streams:
        profile.merge_stream(stream)
    return profile
