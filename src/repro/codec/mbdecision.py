"""Macroblock mode decision: candidate generation and RD cost comparison.

Implements paper §II-B3: each 16x16 macroblock chooses among intra modes
(I-macroblocks), inter modes with optional sub-partitioning
(P/B-macroblocks), bi-prediction (B frames only) and SKIP. Costs combine
distortion (SAD/SATD depending on ``subme``) with an estimated rate term
weighted by the QP-dependent Lagrange multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.codec import kernels
from repro.codec.entropy import se_bits, ue_bits
from repro.codec.motion import (
    MotionSearchResult,
    PaddedReference,
    motion_search,
    subpel_refine,
)
from repro.codec.options import EncoderOptions
from repro.codec.quant import rd_lambda
from repro.codec.types import MBMode, MotionVector

__all__ = ["InterCandidate", "mv_bits", "search_partitions", "choose_inter_ref"]


def mv_bits(mv: MotionVector, pred: MotionVector) -> int:
    """Exp-Golomb cost of coding ``mv`` relative to its prediction."""
    return se_bits(mv.dx - pred.dx) + se_bits(mv.dy - pred.dy) + ue_bits(mv.ref)


@dataclass
class InterCandidate:
    """One inter coding candidate produced by the search stage."""

    mode: MBMode
    mvs: list[MotionVector]
    prediction: np.ndarray  # float64 or uint8 (16, 16)
    distortion: float
    rate_bits: int
    n_search_points: int
    positions: list[tuple[int, int]]
    mv1: MotionVector | None = None

    def rd_cost(self, qp: int) -> float:
        return self.distortion + rd_lambda(qp) * self.rate_bits


def choose_inter_ref(
    cur: np.ndarray,
    refs: list[PaddedReference],
    base_y: int,
    base_x: int,
    pred_mv: MotionVector,
    options: EncoderOptions,
    qp: int,
) -> tuple[MotionSearchResult, int, int, list[tuple[int, int]]]:
    """Search every active reference frame and keep the best.

    This is exactly where ``refs`` "expands the encoding search space"
    (paper §III-A): each extra reference frame costs a full integer-pel
    search plus its reference-index rate penalty. Returns the best result,
    its reference index, the total points evaluated, and all positions
    visited (for trace memory modelling, tagged per ref by the caller).
    """
    lam = rd_lambda(qp)
    best: MotionSearchResult | None = None
    best_ref = 0
    total_points = 0
    all_positions: list[tuple[int, int]] = []
    for ref_idx, ref in enumerate(refs):
        result = motion_search(
            cur,
            ref,
            base_y,
            base_x,
            method=options.me,
            merange=options.merange,
            pred_mv=pred_mv.full_pel,
        )
        total_points += result.n_points
        all_positions.extend((ref_idx, *p) for p in result.positions)  # type: ignore[misc]
        penalized = result.cost + lam * ue_bits(ref_idx)
        if best is None or penalized < best.cost + lam * ue_bits(best_ref):
            best = result
            best_ref = ref_idx
    assert best is not None
    best = subpel_refine(
        cur, refs[best_ref], base_y, base_x, best, subme=options.subme
    )
    total_points = best.n_points + total_points - best.n_points  # subpel included
    return best, best_ref, total_points, all_positions


def _refine_partition(
    cur_part: np.ndarray,
    ref: PaddedReference,
    part_y: int,
    part_x: int,
    start_mv: tuple[int, int],
    size: int,
) -> tuple[tuple[int, int], float, int]:
    """Small diamond refinement of one sub-partition around the parent MV.

    The two diamond rounds drift at most ±2 from the start, so the
    vectorized backend converts that 5x5 neighborhood to int64 once and
    scores candidates from a sliding view; integer SADs are exact, so the
    refinement is bit-identical to the per-fetch reference path.
    """
    best_dx, best_dy = start_mv
    cur64 = cur_part.astype(np.int64)

    if kernels.is_vectorized():
        y0 = part_y + best_dy - 2 + ref.pad
        x0 = part_x + best_dx - 2 + ref.pad
        span = size + 4
        win = ref.plane[y0 : y0 + span, x0 : x0 + span].astype(np.int64)
        s0, s1 = win.strides
        views = as_strided(win, shape=(5, 5, size, size), strides=(s0, s1, s0, s1))
        off_dx, off_dy = best_dx - 2, best_dy - 2
        # The diamond rounds revisit positions; sad_at is pure, so cached
        # integer SADs are exactly the values the reference recomputes.
        cache: dict[tuple[int, int], float] = {}

        def sad_at(dx: int, dy: int) -> float:
            key = (dx, dy)
            sad = cache.get(key)
            if sad is None:
                sad = float(np.abs(cur64 - views[dy - off_dy, dx - off_dx]).sum())
                cache[key] = sad
            return sad

    else:

        def sad_at(dx: int, dy: int) -> float:
            block = ref.block(part_y + dy, part_x + dx, size)
            return float(np.sum(np.abs(cur64 - block.astype(np.int64))))

    best_cost = sad_at(best_dx, best_dy)
    n_points = 1
    for _ in range(2):
        improved = False
        for dx, dy in ((0, -1), (0, 1), (-1, 0), (1, 0)):
            cost = sad_at(best_dx + dx, best_dy + dy)
            n_points += 1
            if cost < best_cost:
                best_cost = cost
                best_dx += dx
                best_dy += dy
                improved = True
        if not improved:
            break
    return (best_dx, best_dy), best_cost, n_points


def search_partitions(
    cur: np.ndarray,
    ref: PaddedReference,
    base_y: int,
    base_x: int,
    parent_mv: MotionVector,
    pred_mv: MotionVector,
    options: EncoderOptions,
    *,
    size: int,
) -> InterCandidate | None:
    """Try splitting the MB into ``size`` x ``size`` partitions (8 or 4).

    Each partition refines its own MV around the parent's. Returns None
    when the option set does not allow this partition size.
    """
    allowed = options.partition_candidates
    if size == 8 and "p8x8" not in allowed:
        return None
    if size == 4 and "p4x4" not in allowed:
        return None
    n = 16 // size
    start = parent_mv.full_pel
    mvs: list[MotionVector] = []
    prediction = np.zeros((16, 16), dtype=np.float64)
    distortion = 0.0
    rate = ue_bits(3 if size == 8 else 4)  # mode signalling
    total_points = 0
    for py in range(n):
        for px in range(n):
            y0, x0 = py * size, px * size
            cur_part = cur[y0 : y0 + size, x0 : x0 + size]
            (dx, dy), cost, pts = _refine_partition(
                cur_part, ref, base_y + y0, base_x + x0, start, size
            )
            total_points += pts
            mv = MotionVector(dx * 4, dy * 4, parent_mv.ref)
            mvs.append(mv)
            rate += mv_bits(mv, pred_mv)
            distortion += cost
            prediction[y0 : y0 + size, x0 : x0 + size] = ref.block(
                base_y + y0 + dy, base_x + x0 + dx, size
            )
    mode = MBMode.INTER_8X8 if size == 8 else MBMode.INTER_4X4
    return InterCandidate(
        mode=mode,
        mvs=mvs,
        prediction=prediction,
        distortion=distortion,
        rate_bits=rate,
        n_search_points=total_points,
        positions=[],
    )
