"""The encoder: orchestrates the full per-frame / per-macroblock pipeline.

Pipeline per frame (decode order): rate control assigns a base QP; each
16x16 macroblock runs motion estimation over every active reference frame
(P/B), optional bi-prediction (B), sub-partition search, intra candidates,
SKIP detection, then transform → (trellis) quantization → entropy coding
→ reconstruction; finally the in-loop deblocking filter runs and the
frame enters the reference picture buffer if it is an anchor.

Every stage reports its invocation to the :class:`~repro.trace.recorder.Tracer`
with the actual data addresses touched and the actual outcomes of its
data-dependent branches, which is what makes the µarch characterization
respond to crf/refs/preset/video exactly as the paper describes.

The hot kernels the encoder calls (transform, motion, intra, deblock,
entropy, chroma) are backend-dispatched via :mod:`repro.codec.kernels`
(``REPRO_KERNELS=reference|vectorized``); the encoder itself additionally
hoists per-macroblock float casts (one :func:`blockify_16x16` per MB
instead of sixteen sub-block casts) under the vectorized backend. Both
backends produce bit-identical bitstreams, reconstructions, and traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.codec import kernels
from repro.codec.chroma import encode_chroma_plane
from repro.codec.deblock import deblock_plane
from repro.codec.entropy import (
    BitWriter,
    encode_block,
    encode_blocks,
    se_bits,
    ue_bits,
    write_se,
    write_ue,
)
from repro.codec.gop import GopPlan, plan_gop
from repro.codec.intra import best_intra_16x16, predict_4x4_blocks
from repro.codec.mbdecision import InterCandidate, choose_inter_ref, mv_bits, search_partitions
from repro.codec.motion import PaddedReference, fetch_prediction
from repro.codec.options import EncoderOptions
from repro.codec.quant import dequantize, quantize, rd_lambda, trellis_quantize
from repro.codec.ratecontrol import FirstPassStats, RateController
from repro.codec.transform import blockify_16x16, forward_4x4, inverse_4x4, unblockify_16x16
from repro.codec.types import (
    CodedFrame,
    CodedMacroblock,
    CodedStream,
    FrameStats,
    FrameType,
    IntraMode,
    MBMode,
    MotionVector,
)
from repro.obs import session as obs
from repro.resilience.faults import fault_point
from repro.trace.recorder import AddressMap, NullTracer, Tracer
from repro.video.frame import FrameSequence
from repro.video.metrics import bitrate_kbps, psnr_sequence

__all__ = ["Encoder", "EncodeResult", "LoopOptimizations", "encode"]

_MODE_IDS = {
    MBMode.SKIP: 0,
    MBMode.INTER_16X16: 1,
    MBMode.INTER_8X8: 2,
    MBMode.INTER_4X4: 3,
    MBMode.BI: 4,
    MBMode.INTRA_16X16: 5,
    MBMode.INTRA_4X4: 6,
    MBMode.INTRA_8X8: 7,
}
_FRAME_TYPE_IDS = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}


@dataclass(frozen=True)
class LoopOptimizations:
    """Polyhedral loop-transformation switches (produced by Graphite).

    - ``tile_transform``: reuse one macroblock-sized coefficient scratch
      buffer instead of streaming through a frame-sized one (loop tiling /
      fusion of the transform→quant→entropy producer-consumer nests).
    - ``fuse_deblock``: single fused pass over the plane instead of a
      horizontal pass followed by a vertical pass (loop fusion).
    - ``interchange_interp``: column-major → row-major traversal in the
      subpel interpolation (loop interchange).
    """

    tile_transform: bool = False
    fuse_deblock: bool = False
    interchange_interp: bool = False

    @property
    def any_enabled(self) -> bool:
        return self.tile_transform or self.fuse_deblock or self.interchange_interp


@dataclass
class EncodeResult:
    """Everything produced by one encoding run."""

    stream: CodedStream
    psnr_db: float
    bitrate_kbps: float
    encode_seconds: float
    frame_stats: list[FrameStats]
    gop: GopPlan
    options: EncoderOptions
    first_pass: FirstPassStats | None = None

    @property
    def total_bits(self) -> int:
        return self.stream.total_bits


@dataclass
class _FrameContext:
    """Per-frame working state shared by the MB loop."""

    src: np.ndarray  # padded uint8
    recon: np.ndarray  # padded uint8 (being built)
    frame_type: FrameType
    base_qp: int
    refs_l0: list["_DpbEntry"] = field(default_factory=list)
    ref_l1: "_DpbEntry | None" = None
    mv_grid: list[list[MotionVector | None]] = field(default_factory=list)
    mb_variances: np.ndarray | None = None
    mean_variance: float = 0.0
    #: Whole-frame float64 cast of ``src`` (batched backends only): the
    #: per-MB ``astype`` calls collapse into one per-frame cast, served
    #: back as views. ``None`` keeps the per-MB cast path.
    src_f: np.ndarray | None = None

    def src_mb_f(self, y: int, x: int) -> np.ndarray:
        """Float64 16x16 source macroblock at plane coordinates (y, x).

        A zero-copy view of the per-frame cast when the batched hoist is
        on, else a fresh per-MB cast — the float64 values are identical
        either way, so downstream arithmetic is unchanged.
        """
        if self.src_f is not None:
            return self.src_f[y : y + 16, x : x + 16]
        return self.src[y : y + 16, x : x + 16].astype(np.float64)


@dataclass
class _DpbEntry:
    """A decoded anchor picture held for reference."""

    display_index: int
    padded: PaddedReference
    base_addr: int
    chroma: tuple[np.ndarray, np.ndarray] | None = None


class Encoder:
    """Single-use-per-call encoder (stateless between :meth:`encode` calls)."""

    def __init__(
        self,
        options: EncoderOptions,
        *,
        tracer: Tracer | None = None,
        loop_opts: LoopOptimizations | None = None,
    ) -> None:
        self.options = options
        self.tracer = tracer if tracer is not None else NullTracer()
        self.loop_opts = loop_opts if loop_opts is not None else LoopOptimizations()

    # ------------------------------------------------------------------
    # public entry
    # ------------------------------------------------------------------
    def encode(self, video: FrameSequence) -> EncodeResult:
        fault_point("encoder.encode", detail=video.name)
        with obs.span(
            "encode",
            preset=self.options.preset_name,
            crf=self.options.crf,
            refs=self.options.refs,
            n_frames=len(video),
        ) as sp:
            result = self._encode_impl(video)
            sp.set(
                psnr_db=round(result.psnr_db, 3),
                bitrate_kbps=round(result.bitrate_kbps, 2),
            )
        tel = obs.current()
        if tel is not None:
            m = tel.metrics
            m.counter("encoder.encodes").inc()
            m.counter("encoder.frames").inc(len(video))
            # The simulated heap the tracer hands out addresses from
            # (AddressMap): the live working set of this encode.
            m.histogram("encoder.heap_bytes").observe(
                float(self._addr.bytes_allocated)
            )
        return result

    def _encode_impl(self, video: FrameSequence) -> EncodeResult:
        start_time = time.perf_counter()
        options = self.options

        first_pass: FirstPassStats | None = None
        if options.rc_mode == "2pass-abr":
            first_pass = self._run_first_pass(video)

        sources = [f.padded_luma() for f in video]
        pad_h, pad_w = sources[0].shape
        gop = plan_gop(video, options)
        self._trace_lookahead(video)

        addr = AddressMap()
        plane_bytes = pad_h * pad_w
        n_mb_y, n_mb_x = pad_h // 16, pad_w // 16
        n_mbs = n_mb_y * n_mb_x
        # Input frame pool, DPB slots, coefficient scratch, bitstream.
        # Each decoded input frame is a fresh buffer: reading it is
        # compulsory-miss traffic, as in a real decode->encode pipeline.
        src_bases = [addr.alloc(f"src{i}", plane_bytes) for i in range(len(video))]
        dpb_bases = [
            addr.alloc(f"dpb{i}", plane_bytes) for i in range(options.refs + 2)
        ]
        if self.loop_opts.tile_transform:
            coeff_base = addr.alloc("coeff_mb", 16 * 16 * 4)
            coeff_stride = 0  # every MB reuses the same scratch
        else:
            coeff_base = addr.alloc("coeff_frame", n_mbs * 16 * 16 * 4)
            coeff_stride = 16 * 16 * 4
        bs_base = addr.alloc("bitstream", 1 << 22)
        self._addr = addr
        self._coeff_base = coeff_base
        self._coeff_stride = coeff_stride
        self._bs_base = bs_base
        self._pad_w = pad_w

        rc = RateController(
            options,
            fps=video.fps,
            n_mbs_per_frame=n_mbs,
            first_pass=first_pass,
        )

        chroma_active = options.chroma and all(
            f.chroma is not None for f in video
        )
        writer = BitWriter()
        self._write_stream_header(writer, video, chroma_active)

        coded_frames: list[CodedFrame] = []
        frame_stats: list[FrameStats] = []
        dpb: list[_DpbEntry] = []
        dpb_slot = 0
        pad = options.merange + 24

        for disp_idx in gop.decode_order:
            ftype = gop.frame_types[disp_idx]
            with obs.span(
                "encode.frame", index=disp_idx, type=ftype.value
            ) as frame_span:
                src = sources[disp_idx]
                self.tracer.begin_frame(ftype.value, disp_idx)
                self._trace_frame_setup(src, src_bases[disp_idx])

                complexity = self._frame_complexity(sources, disp_idx)
                base_qp = rc.frame_qp(ftype, complexity)
                ctx = self._make_context(
                    src, ftype, base_qp, disp_idx, dpb, n_mb_y, n_mb_x
                )

                bits_before = writer.bit_count
                self._write_frame_header(writer, disp_idx, ftype, base_qp)
                mbs = self._encode_frame_mbs(
                    ctx, writer, rc, src_bases[disp_idx], dpb
                )
                chroma_recon = None
                if chroma_active:
                    chroma_recon = self._encode_chroma(
                        writer, video[disp_idx], ftype, disp_idx, dpb, base_qp
                    )
                frame_bits = writer.bit_count - bits_before

                if options.deblock_enabled:
                    ctx.recon, n_edges = self._run_deblock(ctx.recon, base_qp)
                rc.update(frame_bits)
                frame_span.set(qp=base_qp, bits=frame_bits)

                coded_frames.append(
                    CodedFrame(
                        index=disp_idx,
                        frame_type=ftype,
                        qp=base_qp,
                        macroblocks=mbs,
                        recon=ctx.recon,
                        bits=frame_bits,
                        chroma_recon=chroma_recon,
                    )
                )
                frame_stats.append(
                    self._make_stats(ftype, base_qp, frame_bits, mbs)
                )
                self._trace_rc_update()

                if ftype is not FrameType.B:
                    entry = _DpbEntry(
                        display_index=disp_idx,
                        padded=PaddedReference.from_plane(ctx.recon, pad),
                        base_addr=dpb_bases[dpb_slot % len(dpb_bases)],
                        chroma=chroma_recon,
                    )
                    dpb_slot += 1
                    dpb.append(entry)
                    dpb.sort(key=lambda e: e.display_index)
                    # Retain enough anchors for refs past + 1 future reference.
                    if len(dpb) > options.refs + 1:
                        dpb.pop(0)

        stream = CodedStream(
            width=video.width,
            height=video.height,
            fps=video.fps,
            frames=coded_frames,
            bitstream=writer.getvalue(),
        )
        recon_video = FrameSequence.from_lumas(
            [
                f.recon[: video.height, : video.width]
                for f in stream.frames_in_display_order()
            ],
            video.fps,
            name=f"{video.name}:recon",
        )
        quality = psnr_sequence(video, recon_video)
        rate = bitrate_kbps(writer.bit_count, len(video), video.fps)
        return EncodeResult(
            stream=stream,
            psnr_db=quality,
            bitrate_kbps=rate,
            encode_seconds=time.perf_counter() - start_time,
            frame_stats=frame_stats,
            gop=gop,
            options=options,
            first_pass=first_pass,
        )

    # ------------------------------------------------------------------
    # two-pass support
    # ------------------------------------------------------------------
    def _run_first_pass(self, video: FrameSequence) -> FirstPassStats:
        """Fast first pass (untraced): measure per-frame complexity."""
        fast = self.options.with_updates(
            rc_mode="abr",
            me="dia",
            subme=min(self.options.subme, 2),
            trellis=0,
            refs=1,
            preset_name=f"{self.options.preset_name}+pass1",
        )
        result = Encoder(fast).encode(video)
        stats = FirstPassStats()
        for frame in result.stream.frames:
            stats.add(float(frame.bits))
        return stats

    # ------------------------------------------------------------------
    # per-frame helpers
    # ------------------------------------------------------------------
    def _make_context(
        self,
        src: np.ndarray,
        ftype: FrameType,
        base_qp: int,
        disp_idx: int,
        dpb: list[_DpbEntry],
        n_mb_y: int,
        n_mb_x: int,
    ) -> _FrameContext:
        ctx = _FrameContext(
            src=src,
            recon=np.zeros_like(src),
            frame_type=ftype,
            base_qp=base_qp,
            src_f=(
                src.astype(np.float64)
                if kernels.has_capability("batched")
                else None
            ),
        )
        if ftype is not FrameType.I:
            past = [e for e in dpb if e.display_index < disp_idx]
            past.sort(key=lambda e: -e.display_index)  # most recent first
            ctx.refs_l0 = past[: self.options.refs]
            if not ctx.refs_l0 and dpb:
                ctx.refs_l0 = [dpb[0]]
        if ftype is FrameType.B:
            future = [e for e in dpb if e.display_index > disp_idx]
            ctx.ref_l1 = min(future, key=lambda e: e.display_index) if future else None
        ctx.mv_grid = [[None] * n_mb_x for _ in range(n_mb_y)]
        # Per-MB variance for adaptive quantization.
        h16 = n_mb_y * 16
        w16 = n_mb_x * 16
        tiles = (
            src[:h16, :w16]
            .reshape(n_mb_y, 16, n_mb_x, 16)
            .transpose(0, 2, 1, 3)
            .astype(np.float64)
        )
        ctx.mb_variances = tiles.var(axis=(2, 3))
        ctx.mean_variance = float(ctx.mb_variances.mean())
        return ctx

    def _frame_complexity(self, sources: list[np.ndarray], disp_idx: int) -> float:
        if disp_idx == 0:
            return float(np.mean(np.abs(np.diff(sources[0].astype(np.float64)))))
        a = sources[disp_idx].astype(np.float64)
        b = sources[disp_idx - 1].astype(np.float64)
        return float(np.mean(np.abs(a - b)))

    def _encode_frame_mbs(
        self,
        ctx: _FrameContext,
        writer: BitWriter,
        rc: RateController,
        src_base: int,
        dpb: list[_DpbEntry],
    ) -> list[CodedMacroblock]:
        mbs: list[CodedMacroblock] = []
        n_mb_y = len(ctx.mv_grid)
        n_mb_x = len(ctx.mv_grid[0])
        skip_flags: list[bool] = []
        intra_flags: list[bool] = []
        for mb_y in range(n_mb_y):
            for mb_x in range(n_mb_x):
                mb = self._encode_mb(ctx, mb_y, mb_x, writer, rc, src_base, dpb)
                mbs.append(mb)
                skip_flags.append(mb.mode is MBMode.SKIP)
                intra_flags.append(mb.mode.is_intra)
        # Frame-level mode-decision branch history (sequence across MBs).
        self.tracer.kernel(
            "mode_decide",
            iters=0,
            branches={
                "skip": np.array(skip_flags, dtype=bool),
                "intra": np.array(intra_flags, dtype=bool),
            },
        )
        return mbs

    # ------------------------------------------------------------------
    # macroblock encoding
    # ------------------------------------------------------------------
    def _encode_mb(
        self,
        ctx: _FrameContext,
        mb_y: int,
        mb_x: int,
        writer: BitWriter,
        rc: RateController,
        src_base: int,
        dpb: list[_DpbEntry],
    ) -> CodedMacroblock:
        options = self.options
        y, x = mb_y * 16, mb_x * 16
        src_mb = ctx.src[y : y + 16, x : x + 16]
        assert ctx.mb_variances is not None
        qp_mb = rc.mb_qp(
            ctx.base_qp, float(ctx.mb_variances[mb_y, mb_x]), ctx.mean_variance
        )
        lam = rd_lambda(qp_mb)
        pred_mv = self._predict_mv(ctx, mb_y, mb_x)

        inter: InterCandidate | None = None
        skip_candidate: np.ndarray | None = None
        if ctx.frame_type is not FrameType.I and ctx.refs_l0:
            inter, skip_candidate = self._search_inter(
                ctx, mb_y, mb_x, src_mb, pred_mv, qp_mb
            )

        # SKIP check: prediction at the predicted MV whose residual
        # quantizes to all-zero costs essentially nothing to code.
        if skip_candidate is not None:
            residual = ctx.src_mb_f(y, x) - skip_candidate
            levels = trellis_quantize(
                forward_4x4(blockify_16x16(residual)), qp_mb, level=0
            )
            if not np.any(levels):
                return self._emit_skip(
                    ctx, mb_y, mb_x, skip_candidate, qp_mb, pred_mv, writer, rc
                )

        intra_cand = self._search_intra(ctx, mb_y, mb_x, src_mb, qp_mb, inter)

        # Mode decision: lowest distortion + lambda * rate wins.
        choices: list[tuple[float, str]] = []
        if inter is not None:
            choices.append((inter.rd_cost(qp_mb), "inter"))
        if intra_cand is not None:
            choices.append((intra_cand[1], "intra"))
        choices.sort()
        use = choices[0][1]

        if use == "intra" and intra_cand is not None and intra_cand[0].mode is MBMode.INTRA_4X4:
            return self._emit_intra4(ctx, mb_y, mb_x, src_mb, qp_mb, writer, rc)
        if use == "intra" and intra_cand is not None:
            mode = MBMode.INTRA_16X16
            prediction = intra_cand[2]
            mvs: list[MotionVector] = []
            mv1 = None
            intra_mode = intra_cand[3]
        else:
            assert inter is not None
            mode = inter.mode
            prediction = np.asarray(inter.prediction, dtype=np.float64)
            mvs = inter.mvs
            mv1 = inter.mv1
            intra_mode = IntraMode.DC

        mb = self._transform_and_code(
            ctx, mb_y, mb_x, src_mb, prediction, mode, mvs, mv1,
            intra_mode, qp_mb, pred_mv, writer, rc,
        )
        return mb

    # -- inter search ---------------------------------------------------
    def _search_inter(
        self,
        ctx: _FrameContext,
        mb_y: int,
        mb_x: int,
        src_mb: np.ndarray,
        pred_mv: MotionVector,
        qp_mb: int,
    ) -> tuple[InterCandidate, np.ndarray | None]:
        options = self.options
        y, x = mb_y * 16, mb_x * 16
        refs = [e.padded for e in ctx.refs_l0]
        best, ref_idx, n_points, _positions = choose_inter_ref(
            src_mb, refs, y, x, pred_mv, options, qp_mb
        )
        self._trace_me(ctx, mb_y, mb_x, best, n_points, len(refs))

        mv = MotionVector(best.mv_x, best.mv_y, ref_idx)
        ref = refs[ref_idx]
        prediction = fetch_prediction(ref, y, x, mv.dx, mv.dy)
        if mv.dx % 4 != 0 or mv.dy % 4 != 0:
            self._trace_interp(ctx, mb_y, mb_x, ref_idx)
        rate = mv_bits(mv, pred_mv) + ue_bits(_MODE_IDS[MBMode.INTER_16X16])
        candidate = InterCandidate(
            mode=MBMode.INTER_16X16,
            mvs=[mv],
            prediction=prediction,
            distortion=best.cost,
            rate_bits=rate,
            n_search_points=n_points,
            positions=best.positions,
        )

        # Sub-partition candidates (Table II `partitions`).
        part8 = search_partitions(
            src_mb, ref, y, x, mv, pred_mv, options, size=8
        )
        part_flags = []
        if part8 is not None:
            self._trace_partition_search(ctx, mb_y, mb_x, part8)
            better = part8.rd_cost(qp_mb) < candidate.rd_cost(qp_mb)
            part_flags.append(better)
            if better:
                candidate = part8
                part4 = search_partitions(
                    src_mb, ref, y, x, mv, pred_mv, options, size=4
                )
                if part4 is not None:
                    self._trace_partition_search(ctx, mb_y, mb_x, part4)
                    better4 = part4.rd_cost(qp_mb) < candidate.rd_cost(qp_mb)
                    part_flags.append(better4)
                    if better4:
                        candidate = part4
        if part_flags:
            self.tracer.kernel(
                "mode_decide",
                iters=len(part_flags),
                branches={"part_split": np.array(part_flags, dtype=bool)},
            )

        # B-frame: try the future reference and bi-prediction.
        if ctx.frame_type is FrameType.B and ctx.ref_l1 is not None:
            candidate = self._try_bi(ctx, mb_y, mb_x, src_mb, pred_mv, qp_mb, candidate)

        # The SKIP candidate is the L0 ref-0 block at the predicted MV.
        skip_pred: np.ndarray | None = None
        if ctx.frame_type is FrameType.P:
            fx, fy = pred_mv.full_pel
            skip_pred = refs[0].block(y + fy, x + fx).astype(np.float64)
        return candidate, skip_pred

    def _try_bi(
        self,
        ctx: _FrameContext,
        mb_y: int,
        mb_x: int,
        src_mb: np.ndarray,
        pred_mv: MotionVector,
        qp_mb: int,
        candidate: InterCandidate,
    ) -> InterCandidate:
        assert ctx.ref_l1 is not None
        options = self.options
        y, x = mb_y * 16, mb_x * 16
        l1 = ctx.ref_l1.padded
        best1, _, n_points1, _ = choose_inter_ref(
            src_mb, [l1], y, x, pred_mv, options, qp_mb
        )
        self._trace_me(ctx, mb_y, mb_x, best1, n_points1, 1, l1_search=True)
        mv1 = MotionVector(best1.mv_x, best1.mv_y, 0)
        pred1 = fetch_prediction(l1, y, x, mv1.dx, mv1.dy)
        # Bi-prediction: average of the L0 16x16 prediction (recomputed
        # strictly from the coded MV so the decoder can reproduce it) and
        # the L1 prediction.
        mv0 = candidate.mvs[0]
        l0 = ctx.refs_l0[mv0.ref].padded
        pred0 = fetch_prediction(l0, y, x, mv0.dx, mv0.dy)
        bi_pred = (pred0 + pred1) / 2.0
        bi_dist = float(np.sum(np.abs(ctx.src_mb_f(y, x) - bi_pred)))
        bi_rate = (
            mv_bits(mv0, pred_mv) + mv_bits(mv1, pred_mv) + ue_bits(_MODE_IDS[MBMode.BI])
        )
        bi = InterCandidate(
            mode=MBMode.BI,
            mvs=[mv0],
            prediction=bi_pred,
            distortion=bi_dist,
            rate_bits=bi_rate,
            n_search_points=n_points1,
            positions=[],
            mv1=mv1,
        )
        if bi.rd_cost(qp_mb) < candidate.rd_cost(qp_mb):
            return bi
        return candidate

    # -- intra search ---------------------------------------------------
    def _search_intra(
        self,
        ctx: _FrameContext,
        mb_y: int,
        mb_x: int,
        src_mb: np.ndarray,
        qp_mb: int,
        inter: InterCandidate | None,
    ) -> tuple | None:
        """Returns (pseudo-candidate, rd_cost, prediction, intra_mode).

        The INTRA_4X4 candidate is only *scored* here; if it wins, the MB
        is re-encoded by :meth:`_emit_intra4` (true sequential coding).
        """
        options = self.options
        y, x = mb_y * 16, mb_x * 16
        # Skip the intra search entirely when inter prediction is already
        # excellent (x264's early-out), except on I frames.
        if (
            inter is not None
            and ctx.frame_type is not FrameType.I
            and inter.distortion < 16 * 16 * 1.5
        ):
            return None
        i16 = best_intra_16x16(src_mb, ctx.recon, y, x)
        self._trace_intra16(ctx, mb_y, mb_x)
        rate16 = ue_bits(_MODE_IDS[MBMode.INTRA_16X16]) + ue_bits(int(i16.mode))
        cost16 = i16.sad + rd_lambda(qp_mb) * rate16

        best_mode = MBMode.INTRA_16X16
        best_cost = cost16
        if "i4x4" in options.partition_candidates:
            # Quick i4x4 probe: per-4x4 DC/V/H from source neighbors.
            pred4, sad4, modes_tried = predict_4x4_blocks(src_mb, ctx.recon, y, x)
            self._trace_intra4(ctx, mb_y, mb_x, modes_tried)
            rate4 = ue_bits(_MODE_IDS[MBMode.INTRA_4X4]) + 16 * 3
            cost4 = sad4 + rd_lambda(qp_mb) * rate4
            if cost4 < best_cost:
                best_mode = MBMode.INTRA_4X4
                best_cost = cost4

        class _C:  # tiny namespace standing in for InterCandidate
            mode = best_mode

        return (_C, best_cost, i16.prediction.astype(np.float64), i16.mode)

    # -- emit paths -------------------------------------------------------
    def _emit_skip(
        self,
        ctx: _FrameContext,
        mb_y: int,
        mb_x: int,
        prediction: np.ndarray,
        qp_mb: int,
        pred_mv: MotionVector,
        writer: BitWriter,
        rc: RateController,
    ) -> CodedMacroblock:
        bits_before = writer.bit_count
        write_ue(writer, _MODE_IDS[MBMode.SKIP])
        bits = writer.bit_count - bits_before
        y, x = mb_y * 16, mb_x * 16
        recon_mb = np.clip(np.round(prediction), 0, 255).astype(np.uint8)
        ctx.recon[y : y + 16, x : x + 16] = recon_mb
        ctx.mv_grid[mb_y][mb_x] = pred_mv
        rc.note_mb_bits(bits)
        self._trace_entropy_header(ctx, mb_y, mb_x, bits)
        self._trace_recon_write(ctx, mb_y, mb_x)
        return CodedMacroblock(
            mb_x=mb_x, mb_y=mb_y, mode=MBMode.SKIP, qp=qp_mb,
            mvs=[pred_mv], bits=bits,
        )

    def _emit_intra4(
        self,
        ctx: _FrameContext,
        mb_y: int,
        mb_x: int,
        src_mb: np.ndarray,
        qp_mb: int,
        writer: BitWriter,
        rc: RateController,
    ) -> CodedMacroblock:
        """True sequential intra-4x4 coding (decodable)."""
        y0, x0 = mb_y * 16, mb_x * 16
        bits_before = writer.bit_count
        write_ue(writer, _MODE_IDS[MBMode.INTRA_4X4])
        write_se(writer, qp_mb - ctx.base_qp)
        levels_all = np.zeros((16, 4, 4), dtype=np.int32)
        modes4: list[int] = []
        total_modes_tried = 0
        # The block chain is inherently sequential (each block predicts
        # from the reconstruction its predecessors just wrote), but the
        # source casts are not: hoist them into one blockify per MB, or
        # — under a batched backend — serve strided views of the
        # per-frame float cast with no per-MB copy at all.
        srcs_grid = srcs = None
        if ctx.src_f is not None:
            srcs_grid = (
                ctx.src_f[y0 : y0 + 16, x0 : x0 + 16]
                .reshape(4, 4, 4, 4)
                .transpose(0, 2, 1, 3)
            )
        elif kernels.is_vectorized():
            srcs = blockify_16x16(src_mb).astype(np.float64)
        for by in range(4):
            for bx in range(4):
                y = y0 + by * 4
                x = x0 + bx * 4
                if srcs_grid is not None:
                    src4f = srcs_grid[by, bx]
                elif srcs is not None:
                    src4f = srcs[by * 4 + bx]
                else:
                    src4f = src_mb[
                        by * 4 : by * 4 + 4, bx * 4 : bx * 4 + 4
                    ].astype(np.float64)
                mode, pred = self._best_intra4_block(ctx.recon, src4f, y, x)
                total_modes_tried += 3
                modes4.append(int(mode))
                write_ue(writer, int(mode))
                residual = src4f - pred
                coeffs = forward_4x4(residual[None])[0]
                levels = trellis_quantize(
                    coeffs[None], qp_mb, level=self.options.trellis
                )[0]
                levels_all[by * 4 + bx] = levels
                encode_block(writer, levels)
                # minimum(maximum(...)) is np.clip without its dispatch
                # overhead; identical for finite values.
                recon4 = np.minimum(
                    np.maximum(
                        np.round(
                            pred + inverse_4x4(dequantize(levels[None], qp_mb))[0]
                        ),
                        0.0,
                    ),
                    255.0,
                ).astype(np.uint8)
                ctx.recon[y : y + 4, x : x + 4] = recon4
        bits = writer.bit_count - bits_before
        ctx.mv_grid[mb_y][mb_x] = None
        rc.note_mb_bits(bits)
        self._trace_intra4(ctx, mb_y, mb_x, total_modes_tried)
        self._trace_transform_path(ctx, mb_y, mb_x, levels_all, qp_mb)
        self._trace_entropy_coeffs(ctx, mb_y, mb_x, levels_all, bits)
        self._trace_recon_write(ctx, mb_y, mb_x)
        return CodedMacroblock(
            mb_x=mb_x, mb_y=mb_y, mode=MBMode.INTRA_4X4, qp=qp_mb,
            intra_modes4=modes4, coeffs=levels_all, bits=bits,
        )

    @staticmethod
    def _best_intra4_block(
        recon: np.ndarray, src4: np.ndarray, y: int, x: int
    ) -> tuple[int, np.ndarray]:
        """DC(0) / V(1) / H(2) for one 4x4 block from reconstructed pixels.

        ``src4`` may be uint8 or an already-cast float64 block; the cast
        below is a no-op for the latter. The returned prediction is any
        array broadcastable to (4, 4) — the vectorized backend returns
        the 1-D mode generator (or a DC scalar) instead of materializing
        the tile, which is arithmetically identical downstream.
        """
        if kernels.is_vectorized():
            return Encoder._best_intra4_block_fast(recon, src4, y, x)
        top = recon[y - 1, x : x + 4].astype(np.float64) if y > 0 else None
        left = recon[y : y + 4, x - 1].astype(np.float64) if x > 0 else None
        if top is not None and left is not None:
            dc = (top.sum() + left.sum()) / 8.0
        elif top is not None:
            dc = top.mean()
        elif left is not None:
            dc = left.mean()
        else:
            dc = 128.0
        candidates: list[tuple[int, np.ndarray]] = [(0, np.full((4, 4), dc))]
        if top is not None:
            candidates.append((1, np.tile(top, (4, 1))))
        if left is not None:
            candidates.append((2, np.tile(left[:, None], (1, 4))))
        src = np.asarray(src4, dtype=np.float64)
        best_mode, best_pred, best_sad = 0, candidates[0][1], np.inf
        for mode, pred in candidates:
            sad = float(np.sum(np.abs(src - pred)))
            if sad < best_sad:
                best_mode, best_pred, best_sad = mode, pred, sad
        return best_mode, best_pred

    @staticmethod
    def _best_intra4_block_fast(
        recon: np.ndarray, src4f: np.ndarray, y: int, x: int
    ):
        """Vectorized-backend twin of :meth:`_best_intra4_block`.

        Scores candidates with broadcast reductions (no np.tile/np.full
        materialization — the ufunc outputs are elementwise identical) and
        keeps the reference order and strict-< tie-break: DC, then V,
        then H.
        """
        top = recon[y - 1, x : x + 4].astype(np.float64) if y > 0 else None
        left = recon[y : y + 4, x - 1].astype(np.float64) if x > 0 else None
        if top is not None and left is not None:
            dc = (top.sum() + left.sum()) / 8.0
        elif top is not None:
            dc = top.mean()
        elif left is not None:
            dc = left.mean()
        else:
            dc = 128.0
        best_mode = 0
        best_sad = float(np.abs(src4f - dc).sum())
        if top is not None:
            sad = float(np.abs(src4f - top[None, :]).sum())
            if sad < best_sad:
                best_mode, best_sad = 1, sad
        if left is not None:
            sad = float(np.abs(src4f - left[:, None]).sum())
            if sad < best_sad:
                best_mode, best_sad = 2, sad
        if best_mode == 1:
            return 1, top[None, :]
        if best_mode == 2:
            return 2, left[:, None]
        return 0, dc

    def _transform_and_code(
        self,
        ctx: _FrameContext,
        mb_y: int,
        mb_x: int,
        src_mb: np.ndarray,
        prediction: np.ndarray,
        mode: MBMode,
        mvs: list[MotionVector],
        mv1: MotionVector | None,
        intra_mode: IntraMode,
        qp_mb: int,
        pred_mv: MotionVector,
        writer: BitWriter,
        rc: RateController,
    ) -> CodedMacroblock:
        options = self.options
        y, x = mb_y * 16, mb_x * 16
        residual = ctx.src_mb_f(y, x) - prediction
        blocks = blockify_16x16(residual)
        coeffs = forward_4x4(blocks)
        levels = trellis_quantize(coeffs, qp_mb, level=options.trellis)

        bits_before = writer.bit_count
        write_ue(writer, _MODE_IDS[mode])
        if mode is MBMode.INTRA_16X16:
            write_ue(writer, int(intra_mode))
        elif mode is MBMode.BI:
            assert mv1 is not None
            write_ue(writer, mvs[0].ref)
            write_se(writer, mvs[0].dx - pred_mv.dx)
            write_se(writer, mvs[0].dy - pred_mv.dy)
            write_se(writer, mv1.dx - pred_mv.dx)
            write_se(writer, mv1.dy - pred_mv.dy)
        else:  # INTER_16X16 / INTER_8X8 / INTER_4X4
            write_ue(writer, mvs[0].ref)
            for mv in mvs:
                write_se(writer, mv.dx - pred_mv.dx)
                write_se(writer, mv.dy - pred_mv.dy)
        write_se(writer, qp_mb - ctx.base_qp)
        encode_blocks(writer, levels)
        bits = writer.bit_count - bits_before

        recon_blocks = inverse_4x4(dequantize(levels, qp_mb))
        recon_mb = np.minimum(
            np.maximum(np.round(prediction + unblockify_16x16(recon_blocks)), 0.0),
            255.0,
        ).astype(np.uint8)
        ctx.recon[y : y + 16, x : x + 16] = recon_mb
        ctx.mv_grid[mb_y][mb_x] = mvs[0] if mvs else None
        rc.note_mb_bits(bits)

        self._trace_transform_path(ctx, mb_y, mb_x, levels, qp_mb, coeffs)
        self._trace_entropy_coeffs(ctx, mb_y, mb_x, levels, bits)
        self._trace_recon_write(ctx, mb_y, mb_x)
        return CodedMacroblock(
            mb_x=mb_x, mb_y=mb_y, mode=mode, qp=qp_mb, intra_mode=intra_mode,
            mvs=mvs, mv1=mv1, coeffs=levels, bits=bits,
        )

    # ------------------------------------------------------------------
    # MV prediction
    # ------------------------------------------------------------------
    @staticmethod
    def _predict_mv(ctx: _FrameContext, mb_y: int, mb_x: int) -> MotionVector:
        """Median MV predictor from left / top / top-right neighbors."""
        neighbors: list[MotionVector] = []
        grid = ctx.mv_grid
        if mb_x > 0 and grid[mb_y][mb_x - 1] is not None:
            neighbors.append(grid[mb_y][mb_x - 1])  # type: ignore[arg-type]
        if mb_y > 0 and grid[mb_y - 1][mb_x] is not None:
            neighbors.append(grid[mb_y - 1][mb_x])  # type: ignore[arg-type]
        if mb_y > 0 and mb_x + 1 < len(grid[0]) and grid[mb_y - 1][mb_x + 1] is not None:
            neighbors.append(grid[mb_y - 1][mb_x + 1])  # type: ignore[arg-type]
        if not neighbors:
            return MotionVector(0, 0, 0)
        dx = int(np.median([m.dx for m in neighbors]))
        dy = int(np.median([m.dy for m in neighbors]))
        return MotionVector(dx, dy, 0)

    # ------------------------------------------------------------------
    # stream syntax
    # ------------------------------------------------------------------
    def _write_stream_header(
        self, writer: BitWriter, video: FrameSequence, chroma_active: bool
    ) -> None:
        write_ue(writer, video.width)
        write_ue(writer, video.height)
        write_ue(writer, int(round(video.fps * 1000)))
        write_ue(writer, len(video))
        write_ue(writer, 1 if self.options.deblock_enabled else 0)
        write_se(writer, self.options.deblock[1])
        write_ue(writer, 1 if chroma_active else 0)

    def _encode_chroma(
        self,
        writer: BitWriter,
        frame,
        ftype: FrameType,
        disp_idx: int,
        dpb: list[_DpbEntry],
        base_qp: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Code both chroma planes; returns their reconstructions."""
        assert frame.chroma is not None
        ref_chroma: tuple[np.ndarray, np.ndarray] | None = None
        if ftype is not FrameType.I:
            past = [
                e for e in dpb
                if e.display_index < disp_idx and e.chroma is not None
            ]
            if past:
                ref_chroma = max(past, key=lambda e: e.display_index).chroma
        recons = []
        for i, plane in enumerate(frame.chroma):
            prev = ref_chroma[i] if ref_chroma is not None else None
            recons.append(
                encode_chroma_plane(
                    writer, plane, prev, base_qp, trellis=self.options.trellis
                )
            )
            if self.tracer.enabled:
                n_blocks = (plane.shape[0] // 8 + 1) * (plane.shape[1] // 8 + 1)
                self.tracer.kernel("dct4", iters=n_blocks * 4)
                self.tracer.kernel("quant", iters=n_blocks * 4)
                self.tracer.kernel("mc_copy", iters=n_blocks * 8)
        return (recons[0], recons[1])

    @staticmethod
    def _write_frame_header(
        writer: BitWriter, disp_idx: int, ftype: FrameType, qp: int
    ) -> None:
        write_ue(writer, disp_idx)
        write_ue(writer, _FRAME_TYPE_IDS[ftype])
        write_ue(writer, qp)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @staticmethod
    def _make_stats(
        ftype: FrameType, qp: int, bits: int, mbs: list[CodedMacroblock]
    ) -> FrameStats:
        return FrameStats(
            frame_type=ftype,
            qp=qp,
            bits=bits,
            sad=0.0,
            skip_mbs=sum(1 for m in mbs if m.mode is MBMode.SKIP),
            intra_mbs=sum(1 for m in mbs if m.mode.is_intra),
            inter_mbs=sum(1 for m in mbs if m.mode.is_inter),
        )

    # ------------------------------------------------------------------
    # trace emission (addresses + data-dependent branches)
    # ------------------------------------------------------------------
    def _row_addrs(self, base: int, y: int, x: int, rows: int, width: int) -> np.ndarray:
        """Byte addresses covering ``rows`` rows of ``width`` pixels."""
        row_idx = (np.arange(rows) + y) * self._pad_w + x
        starts = base + row_idx
        # Touch the first and last byte of each row span (line granularity
        # is resolved by the cache model).
        return np.concatenate([starts, starts + width - 1]).astype(np.uint64)

    def _trace_lookahead(self, video: FrameSequence) -> None:
        if not self.tracer.enabled:
            return
        rows = video.height // 2
        for i in range(len(video)):
            base = self._lookahead_base(i)
            addrs = (base + np.arange(rows) * (video.width // 2)).astype(np.uint64)
            self.tracer.kernel("lookahead", iters=rows, reads=addrs)

    @staticmethod
    def _lookahead_base(index: int) -> int:
        return 0x0800_0000 + (index % 8) * (1 << 20)

    def _trace_frame_setup(self, src: np.ndarray, src_base: int) -> None:
        if not self.tracer.enabled:
            return
        rows = src.shape[0]
        # Sample every 4th row (pure streaming copy).
        addrs = (src_base + np.arange(0, rows, 4) * self._pad_w).astype(np.uint64)
        self.tracer.kernel("frame_setup", iters=rows, reads=addrs, writes=addrs)

    def _trace_me(
        self,
        ctx: _FrameContext,
        mb_y: int,
        mb_x: int,
        result,
        n_points: int,
        n_refs: int,
        *,
        l1_search: bool = False,
    ) -> None:
        if not self.tracer.enabled:
            return
        y, x = mb_y * 16, mb_x * 16
        # Search-window footprint per reference: the bounding box of the
        # visited positions, touched at row granularity.
        if result.positions:
            dxs = [p[0] for p in result.positions]
            dys = [p[1] for p in result.positions]
            x_lo, x_hi = min(dxs), max(dxs) + 16
            y_lo, y_hi = min(dys), max(dys) + 16
        else:
            x_lo, x_hi, y_lo, y_hi = 0, 16, 0, 16
        read_list = []
        refs = [ctx.ref_l1] if l1_search else ctx.refs_l0
        for entry in refs[:n_refs]:
            if entry is None:
                continue
            read_list.append(
                self._row_addrs(
                    entry.base_addr, y + y_lo, max(x + x_lo, 0), y_hi - y_lo, x_hi - x_lo
                )
            )
        reads = np.concatenate(read_list) if read_list else None
        branches = {}
        if result.improvements:
            branches["improve"] = np.array(result.improvements, dtype=bool)
        self.tracer.kernel(
            "me_sad",
            iters=n_points * 16,
            reads=reads,
            branches=branches or None,
        )

    def _trace_interp(self, ctx: _FrameContext, mb_y: int, mb_x: int, ref_idx: int) -> None:
        if not self.tracer.enabled:
            return
        y, x = mb_y * 16, mb_x * 16
        entry = ctx.refs_l0[ref_idx] if ref_idx < len(ctx.refs_l0) else None
        if entry is None:
            return
        if self.loop_opts.interchange_interp:
            # Row-major traversal: consecutive addresses within a row.
            reads = self._row_addrs(entry.base_addr, y, x, 17, 17)
        else:
            # Column-major traversal: one touch per row per column-pair
            # walk (the filter consumes two columns per vector iteration)
            # — strided, same bytes but poor spatial order.
            cols = np.arange(0, 17, 2)
            rows = np.arange(17)
            addrs = entry.base_addr + (
                (rows[None, :] + y) * self._pad_w + (cols[:, None] + x)
            )
            reads = addrs.ravel().astype(np.uint64)
        scratch = self._addr.alloc("interp_scratch", 32 * 32)
        writes = (scratch + np.arange(17) * 32).astype(np.uint64)
        self.tracer.kernel("me_interp", iters=17, reads=reads, writes=writes)

    def _trace_partition_search(self, ctx, mb_y: int, mb_x: int, cand) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.kernel("me_sad", iters=cand.n_search_points * 8)
        self.tracer.kernel("mode_decide", iters=len(cand.mvs))

    def _trace_intra16(self, ctx: _FrameContext, mb_y: int, mb_x: int) -> None:
        if not self.tracer.enabled:
            return
        y, x = mb_y * 16, mb_x * 16
        base = self._addr.alloc("recon_work", ctx.recon.size)
        reads = self._row_addrs(base, max(y - 1, 0), max(x - 1, 0), 17, 17)
        self.tracer.kernel("intra_pred16", iters=4, reads=reads)

    def _trace_intra4(self, ctx: _FrameContext, mb_y: int, mb_x: int, modes: int) -> None:
        if not self.tracer.enabled:
            return
        y, x = mb_y * 16, mb_x * 16
        base = self._addr.alloc("recon_work", ctx.recon.size)
        reads = self._row_addrs(base, max(y - 1, 0), max(x - 1, 0), 17, 17)
        self.tracer.kernel("intra_pred4", iters=modes, reads=reads)

    def _coeff_addr(self, ctx: _FrameContext, mb_y: int, mb_x: int) -> np.ndarray:
        n_mb_x = len(ctx.mv_grid[0])
        mb_index = mb_y * n_mb_x + mb_x
        base = self._coeff_base + mb_index * self._coeff_stride
        # 16 blocks x 64 bytes each.
        return (base + np.arange(16) * 64).astype(np.uint64)

    def _trace_transform_path(
        self,
        ctx: _FrameContext,
        mb_y: int,
        mb_x: int,
        levels: np.ndarray,
        qp_mb: int,
        coeffs: np.ndarray | None = None,
    ) -> None:
        if not self.tracer.enabled:
            return
        y, x = mb_y * 16, mb_x * 16
        src_base = self._addr.alloc("src_work", ctx.src.size)
        src_reads = self._row_addrs(src_base, y, x, 16, 16)
        coeff_addrs = self._coeff_addr(ctx, mb_y, mb_x)
        self.tracer.kernel("dct4", iters=16, reads=src_reads, writes=coeff_addrs)
        nz_flags = (levels.reshape(16, -1) != 0).ravel()
        self.tracer.kernel(
            "quant",
            iters=16,
            reads=coeff_addrs,
            writes=coeff_addrs,
            branches={"nz": nz_flags},
        )
        if self.options.trellis > 0:
            n_nz = int(np.count_nonzero(levels))
            visited = 16 * 16 if self.options.trellis == 2 else max(n_nz * 4, 16)
            # Real RD decisions: which plainly-quantized coefficients did
            # the trellis pass demote or zero out?
            if coeffs is not None:
                plain = quantize(coeffs, qp_mb)
                changed = (plain != levels)[plain != 0]
                zeroed = changed if changed.size else np.zeros(1, dtype=bool)
            else:
                zeroed = np.zeros(max(n_nz, 1), dtype=bool)
            self.tracer.kernel(
                "trellis",
                iters=visited,
                reads=coeff_addrs,
                branches={"zeroed": zeroed},
            )
        self.tracer.kernel("idct4", iters=16, reads=coeff_addrs)

    def _trace_entropy_coeffs(
        self, ctx: _FrameContext, mb_y: int, mb_x: int, levels: np.ndarray, bits: int
    ) -> None:
        if not self.tracer.enabled:
            return
        coeff_addrs = self._coeff_addr(ctx, mb_y, mb_x)
        flat = levels.reshape(-1)
        sig = flat != 0
        n_tokens = int(sig.sum())
        # Value-dependent coding branches: level-magnitude escape paths at
        # each exp-Golomb prefix boundary. Their volatility tracks the
        # coefficient statistics — rich residuals (low crf) drive the
        # higher thresholds erratically, coarse quantization leaves few,
        # heavily-biased outcomes.
        if n_tokens:
            mags = np.abs(flat[sig])
            big = np.concatenate([mags > t for t in (1, 3, 7)])
        else:
            big = np.zeros(1, dtype=bool)
        bs_addrs = (
            self._bs_base + (np.arange(max(bits // 8, 1)) % (1 << 22))
        ).astype(np.uint64)[:: max(1, bits // 64)]
        self.tracer.kernel(
            "entropy_coeff",
            iters=max(n_tokens, 1),
            reads=coeff_addrs,
            writes=bs_addrs,
            branches={"sig": sig, "big": big},
        )
        self._trace_entropy_header(ctx, mb_y, mb_x, bits)

    def _trace_entropy_header(self, ctx, mb_y: int, mb_x: int, bits: int) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.kernel("entropy_header", iters=1)

    def _trace_recon_write(self, ctx: _FrameContext, mb_y: int, mb_x: int) -> None:
        if not self.tracer.enabled:
            return
        y, x = mb_y * 16, mb_x * 16
        base = self._addr.alloc("recon_work", ctx.recon.size)
        writes = self._row_addrs(base, y, x, 16, 16)
        self.tracer.kernel("mc_copy", iters=16, writes=writes)

    def _run_deblock(self, recon: np.ndarray, qp: int) -> tuple[np.ndarray, int]:
        filtered, n_edges = deblock_plane(recon, qp, offset=self.options.deblock[1])
        if self.tracer.enabled:
            base = self._addr.alloc("recon_work", recon.size)
            rows = recon.shape[0]
            row_addrs = (base + np.arange(0, rows, 2) * self._pad_w).astype(np.uint64)
            edge_mask = self._deblock_branches(recon, filtered)
            if self.loop_opts.fuse_deblock:
                # Fused single pass: each row region touched once.
                self.tracer.kernel(
                    "deblock",
                    iters=n_edges,
                    reads=row_addrs,
                    writes=row_addrs,
                    branches={"filtered": edge_mask},
                )
            else:
                # Two separate full-plane passes (horizontal then vertical).
                self.tracer.kernel(
                    "deblock",
                    iters=n_edges // 2,
                    reads=row_addrs,
                    writes=row_addrs,
                    branches={"filtered": edge_mask[: edge_mask.size // 2]},
                )
                self.tracer.kernel(
                    "deblock",
                    iters=n_edges - n_edges // 2,
                    reads=row_addrs,
                    writes=row_addrs,
                    branches={"filtered": edge_mask[edge_mask.size // 2 :]},
                )
        return filtered, n_edges

    @staticmethod
    def _deblock_branches(before: np.ndarray, after: np.ndarray) -> np.ndarray:
        """Which 4-aligned edge rows actually changed (filter-taken flags)."""
        changed = before[::4, ::4] != after[::4, ::4]
        return changed.ravel()

    def _trace_rc_update(self) -> None:
        if self.tracer.enabled:
            self.tracer.kernel("rc_update", iters=1)


def encode(
    video: FrameSequence,
    options: EncoderOptions | None = None,
    *,
    tracer: Tracer | None = None,
    loop_opts: LoopOptimizations | None = None,
) -> EncodeResult:
    """Convenience wrapper: encode ``video`` with ``options``."""
    return Encoder(
        options if options is not None else EncoderOptions(),
        tracer=tracer,
        loop_opts=loop_opts,
    ).encode(video)
