"""In-loop deblocking filter.

Smooths block-boundary discontinuities in the reconstruction before it is
used as a reference (Table II's ``deblock`` option: ``[0:0]`` disables it
for ultrafast, ``[1:0]`` enables it everywhere else). The filter is a
simplified H.264 boundary filter: edge pixels are low-pass filtered only
where the discontinuity is small enough to be a coding artifact rather
than a real edge, with thresholds derived from QP.

The edge loop is backend-dispatched (see :mod:`repro.codec.kernels`):
each edge only reads/writes the two pixel lines on either side of its own
boundary, and consecutive edges are 4 pixels apart, so every edge along
an axis is independent — the ``vectorized`` backend filters them all with
one fancy-indexed gather/scatter, elementwise identical to the reference
per-edge loop.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_range
from repro.codec import kernels

__all__ = ["deblock_plane", "deblock_thresholds"]


def deblock_thresholds(qp: int, offset: int = 0) -> tuple[float, float]:
    """(alpha, beta) edge/gradient thresholds, increasing with QP.

    Higher QP means bigger quantization artifacts, so the filter becomes
    more aggressive; ``offset`` shifts both (the second Table II deblock
    parameter).
    """
    check_range("qp", qp, 0, 51)
    q = max(0, min(51, qp + offset))
    alpha = 0.8 * (2.0 ** (q / 6.0)) - 0.6
    beta = 0.5 * q - 7.0
    return max(alpha, 0.0), max(beta, 0.0)


def _filter_edges_vectorized(
    plane: np.ndarray, axis: int, alpha: float, beta: float
) -> None:
    """All edges along one axis in one batched gather/filter/scatter."""
    n = plane.shape[axis]
    edges = np.arange(4, n, 4)
    if edges.size == 0:
        return
    # The last edge can sit on the plane boundary; the reference loop
    # substitutes q0 for the missing q1 there, which the clamped index
    # reproduces exactly (plane[n-1] *is* q0 in that case).
    q1_idx = np.minimum(edges + 1, n - 1)
    if axis == 0:
        p1, p0 = plane[edges - 2, :], plane[edges - 1, :]
        q0, q1 = plane[edges, :], plane[q1_idx, :]
    else:
        p1, p0 = plane[:, edges - 2], plane[:, edges - 1]
        q0, q1 = plane[:, edges], plane[:, q1_idx]
    d_edge = np.abs(p0 - q0)
    mask = (
        (d_edge < alpha)
        & (d_edge > 0)
        & (np.abs(p1 - p0) < beta)
        & (np.abs(q1 - q0) < beta)
    )
    if not np.any(mask):
        return
    delta = (q0 - p0) / 4.0
    p0_new = np.where(mask, p0 + delta, p0)
    q0_new = np.where(mask, q0 - delta, q0)
    if axis == 0:
        plane[edges - 1, :] = p0_new
        plane[edges, :] = q0_new
    else:
        plane[:, edges - 1] = p0_new
        plane[:, edges] = q0_new


def _filter_edges(plane: np.ndarray, axis: int, alpha: float, beta: float) -> None:
    """Filter all 4-pixel-aligned edges along one axis, in place."""
    if kernels.is_vectorized():
        _filter_edges_vectorized(plane, axis, alpha, beta)
        return
    n = plane.shape[axis]
    for edge in range(4, n, 4):
        if axis == 0:
            p1 = plane[edge - 2, :]
            p0 = plane[edge - 1, :]
            q0 = plane[edge, :]
            q1 = plane[edge + 1, :] if edge + 1 < n else q0
        else:
            p1 = plane[:, edge - 2]
            p0 = plane[:, edge - 1]
            q0 = plane[:, edge]
            q1 = plane[:, edge + 1] if edge + 1 < plane.shape[1] else q0
        d_edge = np.abs(p0 - q0)
        d_p = np.abs(p1 - p0)
        d_q = np.abs(q1 - q0)
        # Filter only where the step looks like a coding artifact.
        mask = (d_edge < alpha) & (d_edge > 0) & (d_p < beta) & (d_q < beta)
        if not np.any(mask):
            continue
        delta = (q0 - p0) / 4.0
        p0_new = np.where(mask, p0 + delta, p0)
        q0_new = np.where(mask, q0 - delta, q0)
        if axis == 0:
            plane[edge - 1, :] = p0_new
            plane[edge, :] = q0_new
        else:
            plane[:, edge - 1] = p0_new
            plane[:, edge] = q0_new


def deblock_plane(
    recon: np.ndarray, qp: int, *, offset: int = 0
) -> tuple[np.ndarray, int]:
    """Deblock a reconstructed luma plane.

    Returns ``(filtered_plane, n_edges_processed)``; the edge count feeds
    the trace recorder (the filter is a real kernel in the paper's
    profiles).
    """
    alpha, beta = deblock_thresholds(qp, offset)
    work = recon.astype(np.float64)
    _filter_edges(work, axis=0, alpha=alpha, beta=beta)
    _filter_edges(work, axis=1, alpha=alpha, beta=beta)
    n_edges = (work.shape[0] // 4 - 1) * work.shape[1] + (
        work.shape[1] // 4 - 1
    ) * work.shape[0]
    return np.clip(np.round(work), 0, 255).astype(np.uint8), max(n_edges, 0)
