"""Integer-DCT-style 4x4 block transform and Hadamard SATD.

We use the H.264 core transform matrix normalized into an orthonormal
basis, so forward/inverse are exact adjoints (energy preserving — handy
for property tests) while the *structure* (4x4 blocks, zigzag order,
per-position quantization) matches the real codec.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "forward_4x4",
    "inverse_4x4",
    "blockify_16x16",
    "unblockify_16x16",
    "satd_4x4",
    "hadamard_sad",
    "ZIGZAG_4X4",
]

# H.264 core transform rows; row norms are sqrt(4) and sqrt(10).
_CF = np.array(
    [[1, 1, 1, 1], [2, 1, -1, -2], [1, -1, -1, 1], [1, -2, 2, -1]],
    dtype=np.float64,
)
_NORMS = np.sqrt(np.sum(_CF * _CF, axis=1))
_T = _CF / _NORMS[:, None]  # orthonormal: _T @ _T.T == I

# 4x4 Hadamard matrix for SATD.
_H4 = np.array(
    [[1, 1, 1, 1], [1, 1, -1, -1], [1, -1, -1, 1], [1, -1, 1, -1]],
    dtype=np.float64,
)

#: Zigzag scan order for a 4x4 block as (row, col) index arrays.
ZIGZAG_4X4 = (
    np.array([0, 0, 1, 2, 1, 0, 0, 1, 2, 3, 3, 2, 1, 2, 3, 3]),
    np.array([0, 1, 0, 0, 1, 2, 3, 2, 1, 0, 1, 2, 3, 3, 2, 3]),
)


def forward_4x4(blocks: np.ndarray) -> np.ndarray:
    """Forward transform of a batch of 4x4 residual blocks.

    ``blocks`` has shape ``(n, 4, 4)`` (any integer/float dtype); returns
    float64 coefficients of the same shape.
    """
    arr = np.asarray(blocks, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[None]
    if arr.shape[-2:] != (4, 4):
        raise ValueError(f"expected (*, 4, 4) blocks, got {arr.shape}")
    return np.einsum("ij,njk,lk->nil", _T, arr, _T, optimize=True)


def inverse_4x4(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_4x4` (exact adjoint)."""
    arr = np.asarray(coeffs, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[None]
    if arr.shape[-2:] != (4, 4):
        raise ValueError(f"expected (*, 4, 4) coeffs, got {arr.shape}")
    return np.einsum("ji,njk,kl->nil", _T, arr, _T, optimize=True)


def blockify_16x16(mb: np.ndarray) -> np.ndarray:
    """Split a 16x16 macroblock into 16 4x4 blocks in raster order."""
    if mb.shape != (16, 16):
        raise ValueError(f"expected 16x16 macroblock, got {mb.shape}")
    return (
        mb.reshape(4, 4, 4, 4).transpose(0, 2, 1, 3).reshape(16, 4, 4)
    )


def unblockify_16x16(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`blockify_16x16`."""
    if blocks.shape != (16, 4, 4):
        raise ValueError(f"expected (16, 4, 4) blocks, got {blocks.shape}")
    return blocks.reshape(4, 4, 4, 4).transpose(0, 2, 1, 3).reshape(16, 16)


def satd_4x4(blocks: np.ndarray) -> float:
    """Sum of absolute Hadamard-transformed differences over 4x4 blocks.

    SATD is x264's sharper distortion metric used at higher subme levels;
    it approximates the bit cost of the residual better than SAD.
    """
    arr = np.asarray(blocks, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[None]
    trans = np.einsum("ij,njk,lk->nil", _H4, arr, _H4, optimize=True)
    return float(np.sum(np.abs(trans)) / 2.0)


def hadamard_sad(a: np.ndarray, b: np.ndarray) -> float:
    """SATD between two 16x16 pixel blocks."""
    if a.shape != (16, 16) or b.shape != (16, 16):
        raise ValueError("hadamard_sad expects 16x16 blocks")
    diff = a.astype(np.float64) - b.astype(np.float64)
    return satd_4x4(blockify_16x16(diff))
