"""Integer-DCT-style 4x4 block transform and Hadamard SATD.

We use the H.264 core transform matrix normalized into an orthonormal
basis, so forward/inverse are exact adjoints (energy preserving — handy
for property tests) while the *structure* (4x4 blocks, zigzag order,
per-position quantization) matches the real codec.

Every transform here is backend-dispatched (see
:mod:`repro.codec.kernels`): the ``reference`` backend keeps the
original per-call ``einsum(optimize=True)`` formulation, while the
``vectorized`` backend uses fixed-order batched matrix products, which
skip the per-call contraction-path search and are bit-identical (the
greedy path resolves to the same two matmuls for every batch size).
"""

from __future__ import annotations

import numpy as np

from repro.codec import kernels

__all__ = [
    "forward_4x4",
    "inverse_4x4",
    "blockify_16x16",
    "unblockify_16x16",
    "blockify_frame",
    "satd_4x4",
    "satd_16x16",
    "satd_batch",
    "hadamard_sad",
    "hadamard_sad_batch",
    "ZIGZAG_4X4",
]

# H.264 core transform rows; row norms are sqrt(4) and sqrt(10).
_CF = np.array(
    [[1, 1, 1, 1], [2, 1, -1, -2], [1, -1, -1, 1], [1, -2, 2, -1]],
    dtype=np.float64,
)
_NORMS = np.sqrt(np.sum(_CF * _CF, axis=1))
_T = _CF / _NORMS[:, None]  # orthonormal: _T @ _T.T == I
_TT = np.ascontiguousarray(_T.T)

# 4x4 Hadamard matrix for SATD.
_H4 = np.array(
    [[1, 1, 1, 1], [1, 1, -1, -1], [1, -1, -1, 1], [1, -1, 1, -1]],
    dtype=np.float64,
)
_H4T = np.ascontiguousarray(_H4.T)

#: Zigzag scan order for a 4x4 block as (row, col) index arrays.
ZIGZAG_4X4 = (
    np.array([0, 0, 1, 2, 1, 0, 0, 1, 2, 3, 3, 2, 1, 2, 3, 3]),
    np.array([0, 1, 0, 0, 1, 2, 3, 2, 1, 0, 1, 2, 3, 3, 2, 3]),
)


def _as_blocks(blocks: np.ndarray, what: str) -> np.ndarray:
    arr = np.asarray(blocks, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[None]
    if arr.shape[-2:] != (4, 4):
        raise ValueError(f"expected (*, 4, 4) {what}, got {arr.shape}")
    return arr


def forward_4x4(blocks: np.ndarray) -> np.ndarray:
    """Forward transform of a batch of 4x4 residual blocks.

    ``blocks`` has shape ``(n, 4, 4)`` (any integer/float dtype); returns
    float64 coefficients of the same shape.
    """
    arr = _as_blocks(blocks, "blocks")
    if kernels.is_vectorized():
        return _T @ arr @ _TT
    return np.einsum("ij,njk,lk->nil", _T, arr, _T, optimize=True)


def inverse_4x4(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_4x4` (exact adjoint)."""
    arr = _as_blocks(coeffs, "coeffs")
    if kernels.is_vectorized():
        return _TT @ arr @ _T
    return np.einsum("ji,njk,kl->nil", _T, arr, _T, optimize=True)


def blockify_16x16(mb: np.ndarray) -> np.ndarray:
    """Split a 16x16 macroblock into 16 4x4 blocks in raster order."""
    if mb.shape != (16, 16):
        raise ValueError(f"expected 16x16 macroblock, got {mb.shape}")
    return (
        mb.reshape(4, 4, 4, 4).transpose(0, 2, 1, 3).reshape(16, 4, 4)
    )


def unblockify_16x16(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`blockify_16x16`."""
    if blocks.shape != (16, 4, 4):
        raise ValueError(f"expected (16, 4, 4) blocks, got {blocks.shape}")
    return blocks.reshape(4, 4, 4, 4).transpose(0, 2, 1, 3).reshape(16, 16)


def blockify_frame(plane: np.ndarray, size: int = 4) -> np.ndarray:
    """Split a whole plane into ``size`` x ``size`` blocks in raster order.

    The plane's dimensions must be multiples of ``size``; returns an
    ``(n_blocks, size, size)`` array. This is the "blockify the frame
    once" primitive the vectorized encoder paths batch over, generalizing
    :func:`blockify_16x16` beyond a single macroblock.
    """
    h, w = plane.shape
    if h % size or w % size:
        raise ValueError(
            f"plane shape {plane.shape} is not a multiple of {size}"
        )
    return (
        plane.reshape(h // size, size, w // size, size)
        .transpose(0, 2, 1, 3)
        .reshape(-1, size, size)
    )


def satd_4x4(blocks: np.ndarray) -> float:
    """Sum of absolute Hadamard-transformed differences over 4x4 blocks.

    SATD is x264's sharper distortion metric used at higher subme levels;
    it approximates the bit cost of the residual better than SAD.
    """
    arr = _as_blocks(blocks, "blocks")
    if kernels.is_vectorized():
        trans = _H4 @ arr @ _H4T
    else:
        trans = np.einsum("ij,njk,lk->nil", _H4, arr, _H4, optimize=True)
    return float(np.sum(np.abs(trans)) / 2.0)


def satd_batch(block_sets: np.ndarray) -> np.ndarray:
    """Per-candidate SATD over a ``(k, n, 4, 4)`` batch of block sets.

    Returns a ``(k,)`` float64 vector where element ``i`` equals
    ``satd_4x4(block_sets[i])`` bit-exactly (the per-candidate reduction
    covers the same contiguous elements in the same order). The
    ``reference`` backend literally loops :func:`satd_4x4`.
    """
    arr = np.asarray(block_sets, dtype=np.float64)
    if arr.ndim != 4 or arr.shape[-2:] != (4, 4):
        raise ValueError(f"expected (k, n, 4, 4) block sets, got {arr.shape}")
    if not kernels.is_vectorized():
        return np.array([satd_4x4(arr[i]) for i in range(arr.shape[0])])
    override = kernels.impl("transform.satd_batch")
    if override is not None:
        return override(arr)
    trans = _H4 @ np.ascontiguousarray(arr) @ _H4T
    return np.abs(trans).reshape(arr.shape[0], -1).sum(axis=1) / 2.0


def satd_16x16(diff: np.ndarray) -> float:
    """SATD of one 16x16 difference block (float64, shape ``(16, 16)``).

    Equals ``satd_4x4(blockify_16x16(diff))`` bit-exactly; the vectorized
    backend's flat entry point for hot callers that already hold the
    difference (no validation layers, fixed contraction path).
    """
    if kernels.is_vectorized():
        # matmul accepts the strided 4-D view directly; its fresh output is
        # in the same logical order the (16, 4, 4) copy would have, so the
        # full-array reduction sums identical values in an identical order.
        quads = diff.reshape(4, 4, 4, 4).transpose(0, 2, 1, 3)
        trans = _H4 @ quads @ _H4T
        return float(np.abs(trans).sum() / 2.0)
    blocks = diff.reshape(4, 4, 4, 4).transpose(0, 2, 1, 3).reshape(16, 4, 4)
    trans = np.einsum("ij,njk,lk->nil", _H4, blocks, _H4, optimize=True)
    return float(np.sum(np.abs(trans)) / 2.0)


def hadamard_sad(a: np.ndarray, b: np.ndarray) -> float:
    """SATD between two 16x16 pixel blocks."""
    if a.shape != (16, 16) or b.shape != (16, 16):
        raise ValueError("hadamard_sad expects 16x16 blocks")
    diff = a.astype(np.float64) - b.astype(np.float64)
    return satd_16x16(diff)


def hadamard_sad_batch(cur: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """SATD of one 16x16 block against ``(k, 16, 16)`` candidates.

    Element ``i`` equals ``hadamard_sad(cur, candidates[i])`` bit-exactly.
    """
    cands = np.asarray(candidates)
    if cur.shape != (16, 16) or cands.ndim != 3 or cands.shape[-2:] != (16, 16):
        raise ValueError("hadamard_sad_batch expects 16x16 blocks")
    if not kernels.is_vectorized():
        return np.array([hadamard_sad(cur, cands[i]) for i in range(len(cands))])
    override = kernels.impl("transform.hadamard_sad_batch")
    if override is not None:
        return override(cur, cands)
    diff = cur.astype(np.float64)[None] - cands.astype(np.float64)
    k = diff.shape[0]
    blocks = (
        diff.reshape(k, 4, 4, 4, 4).transpose(0, 1, 3, 2, 4).reshape(k, 16, 4, 4)
    )
    return satd_batch(blocks)
