"""The opt-in ``numba`` kernel backend: JIT compiles of the dominant
SATD kernels.

The bench harness shows SATD batches dominate the remaining kernel time
(``transform.satd_batch`` is the hottest workload by ns/block budget),
and Hadamard transforms are pure ±-additions: on the codec's actual
inputs — pixel differences, which are integer-valued in float64 — every
summation order is exact, so a compiled loop nest is bit-identical to
the NumPy matmul formulation regardless of association order.

The backend builds on ``batched`` (inheriting its entropy fold and the
encoder's frame-level hoists) and only overrides the two SATD kernels.
When numba is not installed the backend registers as *unavailable*:
selecting it produces a one-time warning and falls back to ``batched``,
never a crash. Compilation happens lazily on first use; a compile
failure likewise degrades to the NumPy formulation with a warning.
"""

from __future__ import annotations

import sys
import warnings
from typing import Callable

import numpy as np

__all__ = ["register", "satd_batch_jit", "hadamard_sad_batch_jit"]

#: Lazily compiled numba dispatchers, keyed by kernel id.
_compiled: dict[str, Callable] = {}
_compile_failed: dict[str, str] = {}

# 4x4 Hadamard matrix; entries are ±1, so all products are exact.
_H4 = np.array(
    [[1, 1, 1, 1], [1, 1, -1, -1], [1, -1, -1, 1], [1, -1, 1, -1]],
    dtype=np.float64,
)


def _warn_fallback(kernel: str, why: str) -> None:
    if kernel in _compile_failed:
        return
    _compile_failed[kernel] = why
    message = (
        f"numba backend: compiling {kernel} failed ({why}); "
        "using the NumPy formulation for this kernel"
    )
    warnings.warn(message, UserWarning, stacklevel=3)
    print(f"repro.codec.backend_numba: {message}", file=sys.stderr)


def _jit(kernel: str, builder: Callable[[], Callable]) -> Callable | None:
    if kernel in _compile_failed:
        return None
    fn = _compiled.get(kernel)
    if fn is None:
        try:
            fn = builder()
        except Exception as exc:  # numba raises many distinct types
            _warn_fallback(kernel, f"{type(exc).__name__}: {exc}")
            return None
        _compiled[kernel] = fn
    return fn


def _build_satd_batch() -> Callable:
    import numba

    h4 = _H4

    @numba.njit(cache=False, fastmath=False)
    def _satd_batch(arr):  # (k, n, 4, 4) float64, contiguous
        k = arr.shape[0]
        n = arr.shape[1]
        out = np.empty(k, dtype=np.float64)
        for i in range(k):
            total = 0.0
            for j in range(n):
                for r in range(4):
                    for c in range(4):
                        v = 0.0
                        for a in range(4):
                            row = h4[r, a]
                            for b in range(4):
                                v += row * arr[i, j, a, b] * h4[c, b]
                        total += abs(v)
            out[i] = total / 2.0
        return out

    return _satd_batch


def _build_hadamard_sad_batch() -> Callable:
    import numba

    h4 = _H4

    @numba.njit(cache=False, fastmath=False)
    def _hadamard_sad_batch(cur, cands):  # (16, 16), (k, 16, 16) float64
        k = cands.shape[0]
        out = np.empty(k, dtype=np.float64)
        for i in range(k):
            total = 0.0
            for qy in range(4):
                for qx in range(4):
                    for r in range(4):
                        for c in range(4):
                            v = 0.0
                            for a in range(4):
                                row = h4[r, a]
                                for b in range(4):
                                    d = (
                                        cur[qy * 4 + a, qx * 4 + b]
                                        - cands[i, qy * 4 + a, qx * 4 + b]
                                    )
                                    v += row * d * h4[c, b]
                            total += abs(v)
            out[i] = total / 2.0
        return out

    return _hadamard_sad_batch


def satd_batch_jit(arr: np.ndarray) -> np.ndarray:
    """JIT override for ``transform.satd_batch`` on a float64 batch.

    Falls back to the fixed-order NumPy matmul formulation when the
    compile fails (warns once).
    """
    fn = _jit("transform.satd_batch", _build_satd_batch)
    arr = np.ascontiguousarray(arr)
    if fn is not None:
        return fn(arr)
    trans = _H4 @ arr @ _H4.T
    return np.abs(trans).reshape(arr.shape[0], -1).sum(axis=1) / 2.0


def hadamard_sad_batch_jit(cur: np.ndarray, cands: np.ndarray) -> np.ndarray:
    """JIT override for ``transform.hadamard_sad_batch``.

    Computes the per-candidate 16x16 SATD without materializing the
    ``(k, 16, 4, 4)`` difference blocks; falls back to the NumPy path on
    a compile failure (warns once).
    """
    cur64 = np.ascontiguousarray(cur, dtype=np.float64)
    cands64 = np.ascontiguousarray(cands, dtype=np.float64)
    fn = _jit("transform.hadamard_sad_batch", _build_hadamard_sad_batch)
    if fn is not None:
        return fn(cur64, cands64)
    diff = cur64[None] - cands64
    k = diff.shape[0]
    blocks = (
        diff.reshape(k, 4, 4, 4, 4).transpose(0, 1, 3, 2, 4).reshape(k, 16, 4, 4)
    )
    trans = _H4 @ np.ascontiguousarray(blocks) @ _H4.T
    return np.abs(trans).reshape(k, -1).sum(axis=1) / 2.0


def register(register_backend) -> None:
    """Register the ``numba`` backend (marked unavailable without numba)."""
    import importlib.util

    try:
        missing = importlib.util.find_spec("numba") is None
    except (ImportError, ValueError):
        missing = True
    register_backend(
        "numba",
        impls={
            "transform.satd_batch": satd_batch_jit,
            "transform.hadamard_sad_batch": hadamard_sad_batch_jit,
        },
        capabilities=("vectorized", "batched", "jit"),
        base="batched",
        description="JIT-compiled SATD kernels on top of batched",
        unavailable_reason="numba is not installed" if missing else None,
    )
