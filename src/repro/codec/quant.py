"""Quantization, dequantization, and trellis quantization.

The quantization step size follows H.264's exponential ladder (it doubles
every 6 QP), and the trellis quantizer implements the rate-distortion
coefficient adjustment the paper describes in §II-B4: given the entropy
coder's cost model, individual coefficient levels are nudged toward zero
when the rate saving outweighs the added distortion.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_range

__all__ = [
    "qstep",
    "rd_lambda",
    "quantize",
    "dequantize",
    "trellis_quantize",
]

_QSTEP_BASE = 0.625  # H.264 Qstep at QP 0


def qstep(qp: int | float) -> float:
    """Quantization step size for a QP; doubles every 6 QP like H.264."""
    check_range("qp", qp, 0, 51)
    return _QSTEP_BASE * (2.0 ** (qp / 6.0))


def rd_lambda(qp: int | float) -> float:
    """Rate-distortion Lagrange multiplier (x264's lambda schedule)."""
    check_range("qp", qp, 0, 51)
    return 0.85 * (2.0 ** ((qp - 12.0) / 3.0))


def quantize(coeffs: np.ndarray, qp: int, *, deadzone: float = 1.0 / 3.0) -> np.ndarray:
    """Quantize transform coefficients to integer levels.

    Uses a dead-zone quantizer (offset < 0.5) like real encoders: small
    coefficients collapse to zero more aggressively than round-to-nearest,
    trading a little distortion for significant rate.
    """
    check_range("deadzone", deadzone, 0.0, 0.5)
    step = qstep(qp)
    arr = np.asarray(coeffs, dtype=np.float64)
    levels = np.sign(arr) * np.floor(np.abs(arr) / step + deadzone)
    return levels.astype(np.int32)


def dequantize(levels: np.ndarray, qp: int) -> np.ndarray:
    """Reconstruct coefficient values from integer levels."""
    return np.asarray(levels, dtype=np.float64) * qstep(qp)


def _level_bits(level: np.ndarray | int) -> np.ndarray | int:
    """Approximate exp-Golomb signed bit cost of a level (vectorized)."""
    mag = np.abs(level)
    # se(v) maps magnitude m to code number ~2m, costing 2*floor(log2(2m+1))+1.
    return 2 * np.floor(np.log2(2 * np.asarray(mag, dtype=np.float64) + 1)).astype(
        np.int64
    ) + 1


def trellis_quantize(
    coeffs: np.ndarray,
    qp: int,
    *,
    level: int = 1,
) -> np.ndarray:
    """Rate-distortion-optimized quantization (x264 ``trellis``).

    ``level`` 0 returns plain dead-zone quantization. Levels 1 and 2
    start from *round-to-nearest* quantization (like x264, whose trellis
    replaces the dead-zone heuristic with explicit rate-distortion
    decisions) and then run the RD pass; level 2 additionally considers
    demoting levels by one step (not just to zero), mirroring x264's more
    exhaustive trellis used during all mode decisions.

    For each nonzero level we compare::

        J(keep)  = D(keep)           + lambda * R(level)
        J(lower) = D(lower/zero)     + lambda * R(lower)

    and keep whichever minimizes J. Distortion is squared error in the
    (orthonormal) transform domain, so it equals pixel-domain SSE.
    """
    if level not in (0, 1, 2):
        raise ValueError(f"trellis level must be 0, 1 or 2, got {level}")
    if level == 0:
        return quantize(coeffs, qp)
    base = quantize(coeffs, qp, deadzone=0.5)  # round-to-nearest start
    arr = np.asarray(coeffs, dtype=np.float64)
    step = qstep(qp)
    lam = rd_lambda(qp)
    levels = base.astype(np.float64)
    nz = levels != 0

    if not np.any(nz):
        return base

    # Candidate: zero the coefficient.
    d_keep = (arr - levels * step) ** 2
    d_zero = arr**2
    r_keep = _level_bits(levels)
    j_keep = d_keep + lam * np.where(nz, r_keep, 1)
    j_zero = d_zero + lam * 1  # a zero costs ~1 bit in run coding
    choose_zero = nz & (j_zero < j_keep)
    out = np.where(choose_zero, 0.0, levels)

    if level == 2:
        # Candidate: demote magnitude by one (only where |level| > 1).
        big = np.abs(out) > 1
        if np.any(big):
            lowered = out - np.sign(out)
            d_low = (arr - lowered * step) ** 2
            j_low = d_low + lam * _level_bits(lowered)
            j_cur = (arr - out * step) ** 2 + lam * np.where(
                out != 0, _level_bits(out), 1
            )
            out = np.where(big & (j_low < j_cur), lowered, out)

    return out.astype(np.int32)
