"""Encoder option set — the x264 parameter surface the paper sweeps.

``crf`` and ``refs`` are the paper's two headline parameters (§III-A);
the remaining options are the Table II preset knobs. Defaults match the
x264 ``medium`` preset with crf 23 and refs 3, exactly the paper's
defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro._util import check_choice, check_range

__all__ = ["EncoderOptions", "RC_MODES", "ME_METHODS", "PARTITION_SETS"]

RC_MODES = ("cqp", "abr", "2pass-abr", "cbr", "crf", "vbv")
"""The six x264 rate-control modes described in paper §II-B1."""

ME_METHODS = ("dia", "hex", "umh", "esa", "tesa")
"""Integer-pel motion estimation search patterns (§II-B2)."""

PARTITION_SETS = ("none", "i8x8,i4x4", "-p4x4", "default", "all")
"""Macroblock partition search sets, Table II ``partitions`` row."""


@dataclass(frozen=True)
class EncoderOptions:
    """All configurable encoding parameters.

    Attributes mirror x264 option names used in the paper's Table II, plus
    the rate-control selection. Instances are immutable; use
    :meth:`with_updates` to derive variants.
    """

    # --- headline sweep parameters (paper §III-A) ---
    crf: int = 23  # 0 (lossless-ish) .. 51 (worst quality)
    refs: int = 3  # 1 .. 16 reference frames

    # --- rate control ---
    rc_mode: str = "crf"
    qp: int = 26  # used by cqp mode
    bitrate_kbps: float = 2000.0  # target for abr/2pass-abr/cbr
    vbv_maxrate_kbps: float = 0.0  # >0 enables VBV constraint
    vbv_bufsize_kbits: float = 0.0

    # --- Table II preset options ---
    aq_mode: int = 1  # 0 off, 1 variance-based adaptive quant
    b_adapt: int = 1  # 0 fixed, 1 fast, 2 optimal lookahead
    bframes: int = 3  # max consecutive B frames
    deblock: tuple[int, int] = (1, 0)  # (enabled/strength, threshold offset)
    me: str = "hex"
    merange: int = 16
    partitions: str = "-p4x4"
    scenecut: int = 40  # 0 disables scene-cut detection
    subme: int = 7  # 0 .. 11 subpixel refinement / RD level
    trellis: int = 1  # 0 off, 1 final-encode, 2 all-decisions

    # --- chroma ---
    chroma: bool = False  # code Cb/Cr planes (4:2:0) when the source has them

    # --- GOP structure ---
    keyint: int = 250  # max I-frame interval

    preset_name: str = "medium"

    def __post_init__(self) -> None:
        check_range("crf", self.crf, 0, 51)
        check_range("refs", self.refs, 1, 16)
        check_choice("rc_mode", self.rc_mode, RC_MODES)
        check_range("qp", self.qp, 0, 51)
        check_choice("me", self.me, ME_METHODS)
        check_range("merange", self.merange, 4, 64)
        check_choice("partitions", self.partitions, PARTITION_SETS)
        check_range("subme", self.subme, 0, 11)
        check_choice("trellis", self.trellis, (0, 1, 2))
        check_choice("aq_mode", self.aq_mode, (0, 1))
        check_choice("b_adapt", self.b_adapt, (0, 1, 2))
        check_range("bframes", self.bframes, 0, 16)
        check_range("scenecut", self.scenecut, 0, 100)
        check_range("keyint", self.keyint, 1, 1000)
        if self.rc_mode in ("abr", "2pass-abr", "cbr") and self.bitrate_kbps <= 0:
            raise ValueError("bitrate_kbps must be positive for bitrate-driven RC")

    def with_updates(self, **changes: object) -> "EncoderOptions":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def deblock_enabled(self) -> bool:
        return self.deblock[0] != 0

    @property
    def partition_candidates(self) -> tuple[str, ...]:
        """Which sub-16x16 partition shapes the mode decision searches."""
        if self.partitions == "none":
            return ()
        if self.partitions == "i8x8,i4x4":
            return ("i4x4",)
        if self.partitions == "-p4x4":
            return ("i4x4", "p8x8")
        if self.partitions == "default":
            return ("i4x4", "p8x8")
        return ("i4x4", "p8x8", "p4x4")  # "all"

    def describe(self) -> str:
        """One-line human-readable summary used in reports."""
        return (
            f"preset={self.preset_name} crf={self.crf} refs={self.refs} "
            f"me={self.me} subme={self.subme} trellis={self.trellis} "
            f"bframes={self.bframes} rc={self.rc_mode}"
        )
