"""The ten x264 presets, with option values copied from the paper's Table II.

Presets bundle standard values for every tuning knob, trading encoding
speed against compression efficiency. The paper profiles all ten with the
default crf (23) and refs (3); :func:`preset_options` therefore keeps the
preset's own ``refs`` unless the caller overrides it, matching §III-C2
("we use the default crf (23) and refs (3) values for different presets").
"""

from __future__ import annotations

from repro.codec.options import EncoderOptions

__all__ = ["PRESET_NAMES", "PRESETS", "PRESET_REFS", "preset_options"]

PRESET_NAMES = (
    "ultrafast",
    "superfast",
    "veryfast",
    "faster",
    "fast",
    "medium",
    "slow",
    "slower",
    "veryslow",
    "placebo",
)

#: Table II, verbatim. ``partitions`` uses our canonical set names and
#: ``deblock`` is (strength, threshold).
_TABLE_II: dict[str, dict[str, object]] = {
    "ultrafast": dict(
        aq_mode=0, b_adapt=0, bframes=0, deblock=(0, 0), me="dia", merange=16,
        partitions="none", scenecut=0, subme=0, trellis=0,
    ),
    "superfast": dict(
        aq_mode=1, b_adapt=1, bframes=3, deblock=(1, 0), me="dia", merange=16,
        partitions="i8x8,i4x4", scenecut=40, subme=1, trellis=0,
    ),
    "veryfast": dict(
        aq_mode=1, b_adapt=1, bframes=3, deblock=(1, 0), me="hex", merange=16,
        partitions="-p4x4", scenecut=40, subme=2, trellis=0,
    ),
    "faster": dict(
        aq_mode=1, b_adapt=1, bframes=3, deblock=(1, 0), me="hex", merange=16,
        partitions="-p4x4", scenecut=40, subme=4, trellis=1,
    ),
    "fast": dict(
        aq_mode=1, b_adapt=1, bframes=3, deblock=(1, 0), me="hex", merange=16,
        partitions="-p4x4", scenecut=40, subme=6, trellis=1,
    ),
    "medium": dict(
        aq_mode=1, b_adapt=1, bframes=3, deblock=(1, 0), me="hex", merange=16,
        partitions="-p4x4", scenecut=40, subme=7, trellis=1,
    ),
    "slow": dict(
        aq_mode=1, b_adapt=1, bframes=3, deblock=(1, 0), me="hex", merange=16,
        partitions="-p4x4", scenecut=40, subme=8, trellis=2,
    ),
    "slower": dict(
        aq_mode=1, b_adapt=2, bframes=3, deblock=(1, 0), me="umh", merange=16,
        partitions="all", scenecut=40, subme=9, trellis=2,
    ),
    "veryslow": dict(
        aq_mode=1, b_adapt=2, bframes=8, deblock=(1, 0), me="umh", merange=24,
        partitions="all", scenecut=40, subme=10, trellis=2,
    ),
    "placebo": dict(
        aq_mode=1, b_adapt=2, bframes=16, deblock=(1, 0), me="tesa", merange=24,
        partitions="all", scenecut=40, subme=11, trellis=2,
    ),
}

#: The per-preset ``refs`` row of Table II (kept separately because the
#: paper's preset experiments pin refs to the default 3).
PRESET_REFS: dict[str, int] = {
    "ultrafast": 1,
    "superfast": 1,
    "veryfast": 1,
    "faster": 2,
    "fast": 2,
    "medium": 3,
    "slow": 5,
    "slower": 8,
    "veryslow": 16,
    "placebo": 16,
}

PRESETS: dict[str, dict[str, object]] = {
    name: {**opts, "refs": PRESET_REFS[name]} for name, opts in _TABLE_II.items()
}


def preset_options(
    name: str,
    *,
    crf: int = 23,
    refs: int | None = None,
    **overrides: object,
) -> EncoderOptions:
    """Build :class:`EncoderOptions` for a named preset.

    ``refs=None`` keeps the preset's Table II value; the paper's preset
    sweep passes ``refs=3`` explicitly. Additional keyword overrides are
    applied on top (e.g. ``rc_mode="abr"``).
    """
    if name not in _TABLE_II:
        raise KeyError(f"unknown preset {name!r}; choose from {PRESET_NAMES}")
    values: dict[str, object] = dict(_TABLE_II[name])
    values["refs"] = PRESET_REFS[name] if refs is None else refs
    values["crf"] = crf
    values["preset_name"] = name
    values.update(overrides)
    return EncoderOptions(**values)  # type: ignore[arg-type]
