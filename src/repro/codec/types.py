"""Core codec datatypes: frame types, macroblock modes, stream records.

The encoder emits a structured in-memory representation of each coded
macroblock alongside the real bitstream; the decoder and the trace
recorder both consume these records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FrameType",
    "MBMode",
    "IntraMode",
    "MotionVector",
    "CodedMacroblock",
    "CodedFrame",
    "CodedStream",
    "FrameStats",
]


class FrameType(enum.Enum):
    """Inter-frame coding picture types (paper §II-A)."""

    I = "I"  # noqa: E741 - standard codec terminology
    P = "P"
    B = "B"


class MBMode(enum.Enum):
    """Macroblock coding mode after mode decision (paper §II-B3)."""

    INTRA_16X16 = "i16x16"
    INTRA_4X4 = "i4x4"
    INTRA_8X8 = "i8x8"
    INTER_16X16 = "p16x16"
    INTER_8X8 = "p8x8"
    INTER_4X4 = "p4x4"
    BI = "b16x16"
    SKIP = "skip"

    @property
    def is_intra(self) -> bool:
        return self in (MBMode.INTRA_16X16, MBMode.INTRA_4X4, MBMode.INTRA_8X8)

    @property
    def is_inter(self) -> bool:
        return not self.is_intra and self is not MBMode.SKIP


class IntraMode(enum.IntEnum):
    """Simplified intra prediction directions (subset of H.264's nine)."""

    DC = 0
    VERTICAL = 1
    HORIZONTAL = 2
    PLANE = 3


@dataclass(frozen=True)
class MotionVector:
    """A motion vector in quarter-pel units plus its reference index."""

    dx: int
    dy: int
    ref: int = 0

    def __add__(self, other: "MotionVector") -> "MotionVector":
        return MotionVector(self.dx + other.dx, self.dy + other.dy, self.ref)

    @property
    def full_pel(self) -> tuple[int, int]:
        """Integer-pel component ``(dx, dy)``."""
        return (self.dx >> 2, self.dy >> 2)


@dataclass
class CodedMacroblock:
    """Everything needed to decode one macroblock."""

    mb_x: int
    mb_y: int
    mode: MBMode
    qp: int
    intra_mode: IntraMode = IntraMode.DC
    # Per-4x4-block prediction modes for INTRA_4X4 macroblocks.
    intra_modes4: list[int] = field(default_factory=list)
    # Motion vectors per partition; a single entry for 16x16 modes.
    mvs: list[MotionVector] = field(default_factory=list)
    mv1: MotionVector | None = None  # second (future) MV for bi-prediction
    # Quantized transform coefficients: (n_blocks, 4, 4) int32, zigzagged
    # at entropy-coding time. Empty array for SKIP.
    coeffs: np.ndarray = field(default_factory=lambda: np.zeros((0, 4, 4), np.int32))
    bits: int = 0  # exact bitstream cost of this MB

    @property
    def nonzero_coeffs(self) -> int:
        return int(np.count_nonzero(self.coeffs))


@dataclass
class CodedFrame:
    """A coded picture: type, per-MB records, and reconstruction."""

    index: int  # display order
    frame_type: FrameType
    qp: int
    macroblocks: list[CodedMacroblock]
    recon: np.ndarray  # uint8 reconstructed (padded) luma
    bits: int = 0
    # Reconstructed chroma planes (padded), when chroma coding is active.
    chroma_recon: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def mb_count(self) -> int:
        return len(self.macroblocks)


@dataclass
class FrameStats:
    """Per-frame encoding statistics used by rate control and reports."""

    frame_type: FrameType
    qp: int
    bits: int
    sad: float  # total inter/intra prediction SAD (complexity proxy)
    skip_mbs: int
    intra_mbs: int
    inter_mbs: int


@dataclass
class CodedStream:
    """A fully coded clip: header info plus frames in decode order."""

    width: int
    height: int
    fps: float
    frames: list[CodedFrame]
    bitstream: bytes = b""

    @property
    def total_bits(self) -> int:
        return sum(f.bits for f in self.frames)

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    def frames_in_display_order(self) -> list[CodedFrame]:
        return sorted(self.frames, key=lambda f: f.index)
