"""Rate control: the six x264 modes described in paper §II-B1.

- ``cqp``       constant QP (per frame-type offsets only),
- ``crf``       constant rate factor: quality-targeted, complexity-adaptive,
- ``abr``       single-pass average bitrate with feedback,
- ``2pass-abr`` two-pass ABR: first pass measures complexity, second pass
                allocates bits proportionally (the encoder runs twice),
- ``cbr``       constant bitrate, enforced at *macroblock* granularity
                (the only mode the paper notes operates per-macroblock),
- ``vbv``       constrained encoding: CRF base capped by a leaky-bucket
                buffer model.

Adaptive quantization (``aq-mode 1``) applies a variance-based per-MB QP
offset on top of whatever mode is active.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import clamp
from repro.codec.options import EncoderOptions
from repro.codec.types import FrameType

__all__ = ["RateController", "FirstPassStats"]

# Frame-type QP offsets (x264's ip_factor/pb_factor in QP units).
_TYPE_OFFSET = {FrameType.I: -3, FrameType.P: 0, FrameType.B: +2}

_MIN_QP = 0
_MAX_QP = 51


@dataclass
class FirstPassStats:
    """Per-frame complexity measured by a first encoding pass."""

    frame_costs: list[float] = field(default_factory=list)

    def add(self, cost: float) -> None:
        self.frame_costs.append(max(cost, 1.0))

    @property
    def mean_cost(self) -> float:
        if not self.frame_costs:
            return 1.0
        return float(np.mean(self.frame_costs))


class RateController:
    """Stateful per-encode rate controller.

    The encoder asks for a frame-level base QP before coding each frame
    (:meth:`frame_qp`), may ask for per-MB adjustments
    (:meth:`mb_qp`), and reports actual bits afterwards (:meth:`update`).
    """

    def __init__(
        self,
        options: EncoderOptions,
        *,
        fps: float,
        n_mbs_per_frame: int,
        first_pass: FirstPassStats | None = None,
    ) -> None:
        self.options = options
        self.fps = fps
        self.n_mbs_per_frame = max(n_mbs_per_frame, 1)
        self.first_pass = first_pass
        self._frame_index = 0
        self._bits_spent = 0.0
        self._qp_adapt = 0.0  # ABR/CBR feedback term
        # VBV leaky bucket state.
        self._vbv_fill = (options.vbv_bufsize_kbits * 1000.0) / 2.0
        # Per-frame state for CBR macroblock control.
        self._frame_bits_so_far = 0.0
        self._frame_target_bits = 0.0
        if options.rc_mode == "2pass-abr" and first_pass is None:
            raise ValueError("2pass-abr requires FirstPassStats from pass one")

    # ------------------------------------------------------------------
    # frame level
    # ------------------------------------------------------------------
    def _crf_base(self) -> float:
        return float(self.options.crf)

    def _target_bits_per_frame(self) -> float:
        return self.options.bitrate_kbps * 1000.0 / self.fps

    def frame_qp(self, frame_type: FrameType, complexity: float) -> int:
        """Base QP for the next frame.

        ``complexity`` is the lookahead cost estimate for this frame (any
        positive proxy; the encoder uses probe SAD).
        """
        mode = self.options.rc_mode
        offset = _TYPE_OFFSET[frame_type]
        if mode == "cqp":
            qp = self.options.qp + offset
        elif mode == "crf":
            qp = self._crf_base() + offset
        elif mode == "vbv":
            qp = self._crf_base() + offset + self._vbv_pressure()
        elif mode in ("abr", "cbr"):
            qp = 26 + offset + self._qp_adapt
        else:  # 2pass-abr
            assert self.first_pass is not None
            mean = self.first_pass.mean_cost
            idx = min(self._frame_index, len(self.first_pass.frame_costs) - 1)
            cost = self.first_pass.frame_costs[idx] if idx >= 0 else mean
            # Complex frames get more bits => relatively lower QP shift,
            # then the global feedback term steers the average rate.
            qp = 26 + offset + self._qp_adapt - 2.0 * np.log2(cost / mean)
        del complexity  # reserved for finer-grained adaptation
        self._frame_target_bits = self._target_bits_per_frame()
        self._frame_bits_so_far = 0.0
        return int(clamp(round(qp), _MIN_QP, _MAX_QP))

    def _vbv_pressure(self) -> float:
        """Extra QP demanded by the VBV buffer constraint."""
        if self.options.vbv_maxrate_kbps <= 0 or self.options.vbv_bufsize_kbits <= 0:
            return 0.0
        bufsize = self.options.vbv_bufsize_kbits * 1000.0
        fill_frac = self._vbv_fill / bufsize
        # Near-full buffer (we've been spending over maxrate): raise QP.
        if fill_frac > 0.8:
            return 8.0 * (fill_frac - 0.8) / 0.2
        return 0.0

    # ------------------------------------------------------------------
    # macroblock level
    # ------------------------------------------------------------------
    def mb_qp(self, base_qp: int, mb_variance: float, mean_variance: float) -> int:
        """Per-macroblock QP: adaptive quantization plus CBR steering."""
        qp = float(base_qp)
        if self.options.aq_mode == 1 and mean_variance > 0 and mb_variance > 0:
            # x264 AQ: flat blocks get lower QP (they show artifacts most),
            # busy blocks can hide more quantization noise.
            offset = 1.0 * np.log2((mb_variance + 1.0) / (mean_variance + 1.0))
            qp += clamp(offset, -6.0, 6.0)
        if self.options.rc_mode == "cbr" and self._frame_target_bits > 0:
            used_frac = self._frame_bits_so_far / self._frame_target_bits
            # Ahead of budget: raise QP immediately (macroblock granularity).
            if used_frac > 1.0:
                qp += 4.0 * min(used_frac - 1.0, 1.0)
        return int(clamp(round(qp), _MIN_QP, _MAX_QP))

    def note_mb_bits(self, bits: int) -> None:
        """CBR feedback within the frame."""
        self._frame_bits_so_far += bits

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def update(self, frame_bits: int) -> None:
        """Report actual bits for the just-coded frame."""
        self._frame_index += 1
        self._bits_spent += frame_bits
        mode = self.options.rc_mode
        if mode in ("abr", "cbr", "2pass-abr"):
            target = self._target_bits_per_frame() * self._frame_index
            if target > 0 and self._bits_spent > 0:
                error = np.log2(self._bits_spent / target)
                # Proportional controller: 3 QP per doubling of overshoot.
                self._qp_adapt = float(clamp(3.0 * error, -12.0, 12.0))
        if mode == "vbv" and self.options.vbv_maxrate_kbps > 0:
            rate_bits = self.options.vbv_maxrate_kbps * 1000.0 / self.fps
            self._vbv_fill = max(
                0.0,
                min(
                    self._vbv_fill + frame_bits - rate_bits,
                    self.options.vbv_bufsize_kbits * 1000.0,
                ),
            )

    @property
    def achieved_bitrate_kbps(self) -> float:
        if self._frame_index == 0:
            return 0.0
        seconds = self._frame_index / self.fps
        return self._bits_spent / seconds / 1000.0
