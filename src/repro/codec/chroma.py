"""Chroma (4:2:0) coding layer.

x264 codes Cb/Cr at quarter resolution alongside luma. Our chroma layer
is deliberately simpler than the luma path — chroma planes are smooth, so
per-8x8-block coding with two prediction modes (temporal zero-MV from the
previous reconstructed chroma plane, or spatial DC from coded neighbors)
captures almost all of the redundancy:

- each 8x8 chroma block codes ``ue(mode)`` (0 = temporal, 1 = DC intra),
  then its four 4x4 residual blocks through the shared entropy coder;
- the chroma QP follows H.264's convention of capping below the luma QP
  at high QPs (chroma artifacts are more objectionable).

The layer is enabled with ``EncoderOptions(chroma=True)`` and is fully
decodable; the round-trip tests verify encoder/decoder chroma recon
equality bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro.codec import kernels
from repro.codec.entropy import BitReader, BitWriter, decode_block, encode_blocks, read_ue, write_ue
from repro.codec.quant import dequantize, trellis_quantize
from repro.codec.transform import blockify_frame, forward_4x4, inverse_4x4

__all__ = ["chroma_qp", "encode_chroma_plane", "decode_chroma_plane"]

_BLOCK = 8


def chroma_qp(luma_qp: int) -> int:
    """Chroma QP from luma QP (capped at high QPs, per H.264 Table 8-15)."""
    if luma_qp <= 30:
        return luma_qp
    # Progressive compression of the chroma QP range above 30.
    return min(30 + (luma_qp - 30) * 2 // 3, 39)


def _pad_to_block(plane: np.ndarray) -> np.ndarray:
    h, w = plane.shape
    ph = (-h) % _BLOCK
    pw = (-w) % _BLOCK
    if ph == 0 and pw == 0:
        return plane
    return np.pad(plane, ((0, ph), (0, pw)), mode="edge")


def _dc_prediction(recon: np.ndarray, y: int, x: int) -> np.ndarray:
    top = recon[y - 1, x : x + _BLOCK].astype(np.float64) if y > 0 else None
    left = recon[y : y + _BLOCK, x - 1].astype(np.float64) if x > 0 else None
    if top is not None and left is not None:
        dc = (top.sum() + left.sum()) / (2 * _BLOCK)
    elif top is not None:
        dc = top.mean()
    elif left is not None:
        dc = left.mean()
    else:
        dc = 128.0
    return np.full((_BLOCK, _BLOCK), dc)


def _blockify8(block: np.ndarray) -> np.ndarray:
    """An 8x8 block as four 4x4 blocks in raster order."""
    return block.reshape(2, 4, 2, 4).transpose(0, 2, 1, 3).reshape(4, 4, 4)


def _unblockify8(blocks: np.ndarray) -> np.ndarray:
    return blocks.reshape(2, 2, 4, 4).transpose(0, 2, 1, 3).reshape(8, 8)


def encode_chroma_plane(
    writer: BitWriter,
    plane: np.ndarray,
    prev_recon: np.ndarray | None,
    luma_qp: int,
    *,
    trellis: int = 0,
) -> np.ndarray:
    """Encode one chroma plane; returns its reconstruction (padded).

    ``prev_recon`` is the previous frame's reconstructed chroma plane
    (``None`` for intra-only frames).
    """
    src = _pad_to_block(np.asarray(plane, dtype=np.uint8))
    qp = chroma_qp(luma_qp)
    h, w = src.shape
    recon = np.zeros((h, w), dtype=np.uint8)
    # The DC prediction chains through the running reconstruction, so the
    # block loop is inherently sequential; the temporal candidate only
    # reads the previous frame, so the vectorized backend blockifies the
    # plane once and scores every temporal candidate in one batch (same
    # contiguous 64-element reductions, same tie-break: temporal wins
    # because it sorts first in the reference candidate list).
    vectorized = kernels.is_vectorized()
    src_blocks = t_blocks = t_sads = None
    if vectorized:
        src_blocks = blockify_frame(src, _BLOCK).astype(np.float64)
        if prev_recon is not None and prev_recon.shape == src.shape:
            t_blocks = blockify_frame(prev_recon, _BLOCK).astype(np.float64)
            t_sads = (
                np.abs(src_blocks - t_blocks)
                .reshape(len(src_blocks), -1)
                .sum(axis=1)
            )
    i = 0
    for y in range(0, h, _BLOCK):
        for x in range(0, w, _BLOCK):
            if src_blocks is not None:
                block = src_blocks[i]
            else:
                block = src[y : y + _BLOCK, x : x + _BLOCK].astype(np.float64)
            dc_pred = _dc_prediction(recon, y, x)
            if vectorized:
                mode, pred = 1, dc_pred
                if prev_recon is not None:
                    if t_blocks is not None:
                        temporal = t_blocks[i]
                        t_sad = float(t_sads[i])
                    else:
                        temporal = prev_recon[
                            y : y + _BLOCK, x : x + _BLOCK
                        ].astype(np.float64)
                        t_sad = float(np.sum(np.abs(block - temporal)))
                    if t_sad <= float(np.sum(np.abs(block - dc_pred))):
                        mode, pred = 0, temporal
            else:
                candidates: list[tuple[int, np.ndarray]] = [(1, dc_pred)]
                if prev_recon is not None:
                    temporal = prev_recon[y : y + _BLOCK, x : x + _BLOCK].astype(
                        np.float64
                    )
                    candidates.insert(0, (0, temporal))
                mode, pred = min(
                    candidates, key=lambda c: float(np.sum(np.abs(block - c[1])))
                )
            write_ue(writer, mode)
            residual = block - pred
            levels = trellis_quantize(
                forward_4x4(_blockify8(residual)), qp, level=trellis
            )
            encode_blocks(writer, levels)
            rec = np.clip(
                np.round(pred + _unblockify8(inverse_4x4(dequantize(levels, qp)))),
                0,
                255,
            ).astype(np.uint8)
            recon[y : y + _BLOCK, x : x + _BLOCK] = rec
            i += 1
    return recon


def decode_chroma_plane(
    reader: BitReader,
    shape: tuple[int, int],
    prev_recon: np.ndarray | None,
    luma_qp: int,
) -> np.ndarray:
    """Decode one chroma plane of unpadded ``shape`` (mirrors the encoder)."""
    qp = chroma_qp(luma_qp)
    h = (shape[0] + _BLOCK - 1) // _BLOCK * _BLOCK
    w = (shape[1] + _BLOCK - 1) // _BLOCK * _BLOCK
    recon = np.zeros((h, w), dtype=np.uint8)
    for y in range(0, h, _BLOCK):
        for x in range(0, w, _BLOCK):
            mode = read_ue(reader)
            if mode == 0:
                if prev_recon is None:
                    raise ValueError("temporal chroma block without a reference")
                pred = prev_recon[y : y + _BLOCK, x : x + _BLOCK].astype(np.float64)
            elif mode == 1:
                pred = _dc_prediction(recon, y, x)
            else:
                raise ValueError(f"corrupt chroma block mode {mode}")
            levels = np.stack([decode_block(reader) for _ in range(4)])
            rec = np.clip(
                np.round(pred + _unblockify8(inverse_4x4(dequantize(levels, qp)))),
                0,
                255,
            ).astype(np.uint8)
            recon[y : y + _BLOCK, x : x + _BLOCK] = rec
    return recon
