"""The ``batched`` kernel backend: whole-GOP/frame batching on top of
the vectorized NumPy paths.

The vectorized backend already removed per-element Python loops inside
each kernel call; what remains on the profile is per-*call* overhead —
one bulk bit append per 4x4 block, one float cast per macroblock. This
backend attacks that layer while keeping bit-identity to ``reference``:

- :func:`encode_blocks_folded` folds a whole ``(n, 4, 4)`` batch of
  run-level codes into **one** big-int append instead of one per block
  (codeword concatenation is associative, so the emitted bitstream is
  unchanged — only the number of ``BitWriter.append_bits`` calls drops).
  Every entropy call site benefits: the luma residual batch per
  macroblock, the intra-4x4 chain, and the four-block chroma batches.
- The encoder, seeing the ``"batched"`` capability, additionally hoists
  the per-macroblock ``astype(float64)`` casts to one per-frame cast and
  serves 4x4 intra source blocks as strided views of it (see
  ``_FrameContext.src_mb_f`` in :mod:`repro.codec.encoder`).

What is *not* batched, deliberately: the macroblock loop itself (rate
control feeds each MB's bit count back into the next MB's QP), the
intra-4x4 block chain (each block predicts from the reconstruction its
predecessors just wrote), and deblocking's dependent edge order. Those
are sequential by construction; batching them would change outputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["encode_blocks_folded", "register"]


def encode_blocks_folded(writer, blocks: np.ndarray) -> list[int]:
    """Run-level encode ``(n, 4, 4)`` blocks with one bulk bit append.

    Emits exactly the bitstream of the per-block vectorized path in
    :func:`repro.codec.entropy.encode_blocks` (each block's big-int code
    is built identically; concatenating them before the single
    ``append_bits`` equals appending them one by one) and returns the
    same per-block bit counts.
    """
    from repro.codec.transform import ZIGZAG_4X4

    n = blocks.shape[0]
    scans = blocks[:, ZIGZAG_4X4[0], ZIGZAG_4X4[1]]  # (n, 16)
    nz_mask = scans != 0

    # All exp-Golomb codewords and widths for the whole batch at once.
    # np.nonzero walks row-major, so entries arrive grouped by block in
    # scan order — exactly the order the per-block path emits them.
    block_idx, pos = np.nonzero(nz_mask)
    levels = scans[block_idx, pos].astype(np.int64)
    # Zero-run codes: distance to the previous nonzero in the same block
    # (or to -1 at a block start).
    prev = np.empty_like(pos)
    if pos.size:
        prev[0] = -1
        prev[1:] = np.where(block_idx[1:] == block_idx[:-1], pos[:-1], -1)
    run_codes = pos - prev
    level_codes = np.where(levels > 0, 2 * levels, 1 - 2 * levels)
    header_codes = nz_mask.sum(axis=1) + 1  # (n,) nonzero counts + 1
    # Codeword width 2*bit_length-1; frexp's exponent IS bit_length for
    # positive ints (exact in float64 below 2**53 — levels are int32).
    run_widths = 2 * np.frexp(run_codes.astype(np.float64))[1] - 1
    level_widths = 2 * np.frexp(level_codes.astype(np.float64))[1] - 1
    header_widths = 2 * np.frexp(header_codes.astype(np.float64))[1] - 1
    per_block = header_widths + np.bincount(
        block_idx, weights=run_widths + level_widths, minlength=n
    ).astype(np.int64)

    # Assembly must stay in Python big ints; everything numeric is done,
    # so hand the loop plain lists.
    bi = block_idx.tolist()
    rc, rw = run_codes.tolist(), run_widths.tolist()
    lc, lw = level_codes.tolist(), level_widths.tolist()
    head = header_codes.tolist()
    widths = per_block.tolist()
    total_acc = 0
    total_bits = 0
    j = 0
    n_entries = len(bi)
    for b in range(n):
        acc = head[b]
        while j < n_entries and bi[j] == b:
            acc = (acc << rw[j]) | rc[j]
            acc = (acc << lw[j]) | lc[j]
            j += 1
        total_acc = (total_acc << widths[b]) | acc
        total_bits += widths[b]
    writer.append_bits(total_acc, total_bits)
    return widths


def register(register_backend) -> None:
    """Register the ``batched`` backend with the kernel registry."""
    register_backend(
        "batched",
        impls={"entropy.encode_blocks": encode_blocks_folded},
        capabilities=("vectorized", "batched"),
        base="vectorized",
        description=(
            "vectorized plus frame-level cast hoists and one bulk bit "
            "append per block batch"
        ),
    )
