"""Motion estimation: the x264 integer-pel search patterns plus subpel.

Implements the paper's §II-B2 search methods — diamond (dia), hexagon
(hex), uneven multi-hexagon (umh), exhaustive (esa) and Hadamard
exhaustive (tesa) — over a padded reference plane, plus subpixel
refinement gated by ``subme``. Every search reports how many candidate
positions it evaluated and which positions it visited; the encoder turns
those into memory-access events for the µarch simulator, which is how
"refs expands the encoding search space" (paper §III-A) becomes visible
as data-cache pressure.

The candidate-scoring loops are backend-dispatched (see
:mod:`repro.codec.kernels`): the ``vectorized`` backend gathers each
round's candidate blocks into one ``(k, 16, 16)`` batch and scores them
with a single integer reduction, then replays the running-best update in
order, so the chosen vector, cost, point count, visit order, and
improvement flags are identical to the reference loop. Greedy stages
whose candidate *positions* depend on mid-loop best updates (the umh
hexagon rings, subpel refinement) stay sequential in both backends —
only their per-candidate cost evaluation gets the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import as_strided, sliding_window_view

from repro.codec import kernels
from repro.codec.transform import hadamard_sad, hadamard_sad_batch, satd_16x16

__all__ = [
    "PaddedReference",
    "MotionSearchResult",
    "motion_search",
    "subpel_refine",
    "fetch_prediction",
]

_DIA_OFFSETS = ((0, -1), (0, 1), (-1, 0), (1, 0))
_HEX_OFFSETS = ((-2, 0), (2, 0), (-1, 2), (1, 2), (-1, -2), (1, -2))  # (dx, dy)


@dataclass(frozen=True)
class PaddedReference:
    """A reference luma plane edge-padded for unclamped block fetches."""

    plane: np.ndarray  # uint8, padded
    pad: int
    height: int  # original geometry
    width: int

    @staticmethod
    def from_plane(plane: np.ndarray, pad: int) -> "PaddedReference":
        if plane.ndim != 2:
            raise ValueError("reference plane must be 2-D")
        padded = np.pad(plane, pad, mode="edge")
        return PaddedReference(padded, pad, plane.shape[0], plane.shape[1])

    def block(self, y: int, x: int, size: int = 16) -> np.ndarray:
        """Fetch a block at *unpadded* coordinates (may be negative)."""
        yy = y + self.pad
        xx = x + self.pad
        return self.plane[yy : yy + size, xx : xx + size]

    def _float_plane(self) -> np.ndarray:
        """Lazily cached float64 copy of the padded plane (read-only use).

        Interpolation reads the same pixel values whether each fetch casts
        its own slice or slices one shared cast; caching the cast once per
        reference removes a per-fetch copy from the subpel hot path.
        """
        planef = self.__dict__.get("_planef")
        if planef is None:
            planef = self.plane.astype(np.float64)
            object.__setattr__(self, "_planef", planef)
        return planef

    def _phase_plane(self, fy_i: int, fx_i: int) -> np.ndarray:
        """Whole-plane bilinear interpolation for one quarter-pel phase.

        The fractional phase is position-independent, so interpolating the
        full plane once (horizontal lerp, then vertical — the same per-pixel
        expression tree as the per-block fetch) turns every later fetch of
        that phase into a plain slice. Like x264's precomputed half-pel
        planes; results are bit-identical because each output pixel runs the
        identical multiply/add sequence on identical values.
        """
        cache = self.__dict__.get("_phase_planes")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_phase_planes", cache)
        key = (fy_i, fx_i)
        plane = cache.get(key)
        if plane is None:
            plane = self._float_plane()
            if fx_i:
                fx = fx_i * 0.25
                plane = plane[:, :-1] * (1 - fx) + plane[:, 1:] * fx
            if fy_i:
                fy = fy_i * 0.25
                plane = plane[:-1] * (1 - fy) + plane[1:] * fy
            cache[key] = plane
        return plane

    def half_pel_block(self, y4: int, x4: int, size: int = 16) -> np.ndarray:
        """Fetch a block at quarter-pel coordinates via bilinear interp.

        The vectorized backend uses integer index/fraction math (exact:
        the fractions are quarters, so ``(y4 & 3) * 0.25`` is bit-equal to
        the float remainder) and slices a lazily cached whole-plane
        interpolation for the phase (see :meth:`_phase_plane`), which is
        bit-identical to interpolating the block in place.
        """
        if kernels.is_vectorized():
            fy_i = y4 & 3
            fx_i = x4 & 3
            y0 = (y4 >> 2) + self.pad
            x0 = (x4 >> 2) + self.pad
            # Views of the cached phase plane: subpel scoring and
            # prediction fetches never mutate fetched blocks.
            plane = self._phase_plane(fy_i, fx_i)
            return plane[y0 : y0 + size, x0 : x0 + size]
        y = y4 / 4.0 + self.pad
        x = x4 / 4.0 + self.pad
        y0, x0 = int(np.floor(y)), int(np.floor(x))
        fy, fx = y - y0, x - x0
        a = self.plane[y0 : y0 + size + 1, x0 : x0 + size + 1].astype(np.float64)
        top = a[:size, :size] * (1 - fx) + a[:size, 1 : size + 1] * fx
        bot = a[1 : size + 1, :size] * (1 - fx) + a[1 : size + 1, 1 : size + 1] * fx
        return top * (1 - fy) + bot * fy


@dataclass
class MotionSearchResult:
    """Outcome of one block's motion search against one reference."""

    mv_x: int  # quarter-pel
    mv_y: int
    cost: float  # SAD (or SATD at high subme) at the chosen position
    n_points: int  # candidate positions evaluated
    positions: list[tuple[int, int]] = field(default_factory=list)  # full-pel visits
    improvements: list[bool] = field(default_factory=list)  # per-candidate "new best"
    early_terminated: bool = False


def _sad(cur: np.ndarray, ref_block: np.ndarray) -> float:
    return float(np.sum(np.abs(cur.astype(np.int64) - ref_block.astype(np.int64))))


def _pattern_search_reference(
    cur: np.ndarray,
    ref: PaddedReference,
    start: tuple[int, int],
    offsets: tuple[tuple[int, int], ...],
    merange: int,
    base_y: int,
    base_x: int,
    *,
    max_iters: int = 64,
) -> MotionSearchResult:
    """The original scalar pattern search: one ``_sad`` call per candidate."""
    best_dx, best_dy = start
    best_cost = _sad(cur, ref.block(base_y + best_dy, base_x + best_dx))
    n_points = 1
    positions = [(best_dx, best_dy)]
    improvements = [True]
    seen = {(best_dx, best_dy)}
    for _ in range(max_iters):
        improved = False
        center = (best_dx, best_dy)
        for dx, dy in offsets:
            cx, cy = center[0] + dx, center[1] + dy
            if abs(cx) > merange or abs(cy) > merange or (cx, cy) in seen:
                continue
            seen.add((cx, cy))
            cost = _sad(cur, ref.block(base_y + cy, base_x + cx))
            n_points += 1
            positions.append((cx, cy))
            better = cost < best_cost
            improvements.append(better)
            if better:
                best_cost = cost
                best_dx, best_dy = cx, cy
                improved = True
        if not improved:
            break
    return MotionSearchResult(
        best_dx * 4, best_dy * 4, best_cost, n_points, positions, improvements
    )


class _SearchWindow:
    """Integer candidate scoring over one block's full search window.

    Converts the ``(2*merange+16)``-pixel window to int64 once and exposes
    every candidate block as a zero-copy sliding view, so scoring a round
    of candidates is a single fancy-index gather plus one reduction.
    Integer arithmetic makes each batched SAD exactly equal to the
    per-candidate ``_sad`` calls it replaces.
    """

    __slots__ = ("cur", "views", "merange")

    def __init__(
        self,
        cur: np.ndarray,
        ref: PaddedReference,
        base_y: int,
        base_x: int,
        merange: int,
    ) -> None:
        y0 = base_y - merange + ref.pad
        x0 = base_x - merange + ref.pad
        span = 2 * merange + 16
        win = ref.plane[y0 : y0 + span, x0 : x0 + span].astype(np.int64)
        n = span - 15
        s0, s1 = win.strides
        # Equivalent to sliding_window_view(win, (16, 16)) but without its
        # per-call normalization overhead; one window is built per search.
        self.views = as_strided(win, shape=(n, n, 16, 16), strides=(s0, s1, s0, s1))
        self.cur = cur.astype(np.int64)
        self.merange = merange

    def sad(self, cx: int, cy: int) -> float:
        m = self.merange
        return float(np.abs(self.cur - self.views[cy + m, cx + m]).sum())

    def sads(self, cands: list[tuple[int, int]]) -> np.ndarray:
        m = self.merange
        ys = np.fromiter((cy + m for _, cy in cands), dtype=np.intp, count=len(cands))
        xs = np.fromiter((cx + m for cx, _ in cands), dtype=np.intp, count=len(cands))
        blocks = self.views[ys, xs]
        return np.abs(self.cur[None] - blocks).reshape(len(cands), -1).sum(axis=1)


def _pattern_search_vectorized(
    cur: np.ndarray,
    ref: PaddedReference,
    start: tuple[int, int],
    offsets: tuple[tuple[int, int], ...],
    merange: int,
    base_y: int,
    base_x: int,
    *,
    max_iters: int = 64,
    win: _SearchWindow | None = None,
) -> MotionSearchResult:
    """Batched pattern search: each round's candidates scored in one shot."""
    if win is None:
        win = _SearchWindow(cur, ref, base_y, base_x, merange)
    best_dx, best_dy = start
    best_cost = win.sad(best_dx, best_dy)
    n_points = 1
    positions = [(best_dx, best_dy)]
    improvements = [True]
    seen = {(best_dx, best_dy)}
    for _ in range(max_iters):
        center = (best_dx, best_dy)
        cands: list[tuple[int, int]] = []
        for dx, dy in offsets:
            cx, cy = center[0] + dx, center[1] + dy
            if abs(cx) > merange or abs(cy) > merange or (cx, cy) in seen:
                continue
            seen.add((cx, cy))
            cands.append((cx, cy))
        if not cands:
            break
        if len(cands) <= 2:
            # Gather overhead beats two plain reductions; values match.
            costs = [win.sad(cx, cy) for cx, cy in cands]
        else:
            costs = win.sads(cands)
        improved = False
        for (cx, cy), cost_i in zip(cands, costs):
            cost = float(cost_i)
            n_points += 1
            positions.append((cx, cy))
            better = cost < best_cost
            improvements.append(better)
            if better:
                best_cost = cost
                best_dx, best_dy = cx, cy
                improved = True
        if not improved:
            break
    return MotionSearchResult(
        best_dx * 4, best_dy * 4, best_cost, n_points, positions, improvements
    )


def _pattern_search(
    cur: np.ndarray,
    ref: PaddedReference,
    start: tuple[int, int],
    offsets: tuple[tuple[int, int], ...],
    merange: int,
    base_y: int,
    base_x: int,
    *,
    max_iters: int = 64,
    win: _SearchWindow | None = None,
) -> MotionSearchResult:
    """Iterative pattern search (shared by dia and hex coarse stages)."""
    if kernels.is_vectorized():
        return _pattern_search_vectorized(
            cur, ref, start, offsets, merange, base_y, base_x,
            max_iters=max_iters, win=win,
        )
    return _pattern_search_reference(
        cur, ref, start, offsets, merange, base_y, base_x, max_iters=max_iters
    )


def _make_window(
    cur: np.ndarray, ref: PaddedReference, base_y: int, base_x: int, merange: int
) -> _SearchWindow | None:
    return (
        _SearchWindow(cur, ref, base_y, base_x, merange)
        if kernels.is_vectorized()
        else None
    )


def _dia_search(cur, ref, merange, base_y, base_x, pred) -> MotionSearchResult:
    win = _make_window(cur, ref, base_y, base_x, merange)
    return _pattern_search(
        cur, ref, pred, _DIA_OFFSETS, merange, base_y, base_x, win=win
    )


def _hex_search(
    cur, ref, merange, base_y, base_x, pred, win: _SearchWindow | None = None
) -> MotionSearchResult:
    if win is None:
        win = _make_window(cur, ref, base_y, base_x, merange)
    coarse = _pattern_search(
        cur, ref, pred, _HEX_OFFSETS, merange, base_y, base_x, win=win
    )
    # Final small-diamond refinement around the hexagon winner.
    fine = _pattern_search(
        cur,
        ref,
        (coarse.mv_x // 4, coarse.mv_y // 4),
        _DIA_OFFSETS,
        merange,
        base_y,
        base_x,
        max_iters=2,
        win=win,
    )
    fine.n_points += coarse.n_points
    fine.positions = coarse.positions + fine.positions
    fine.improvements = coarse.improvements + fine.improvements
    return fine


def _umh_search(cur, ref, merange, base_y, base_x, pred) -> MotionSearchResult:
    """Simplified uneven multi-hexagon: cross + scaled hexagon grid + hex.

    The cross stage's candidate positions are fixed up front, so the
    vectorized backend scores the whole cross in one batch; the hexagon
    rings re-center on the running best mid-loop and therefore stay
    sequential in both backends (only the per-candidate SAD is swapped
    for the shared window's fast path).
    """
    win = _make_window(cur, ref, base_y, base_x, merange)
    best = _pattern_search(
        cur, ref, pred, _DIA_OFFSETS, merange, base_y, base_x, max_iters=1, win=win
    )
    n_points = best.n_points
    positions = list(best.positions)
    improvements = list(best.improvements)
    best_dx, best_dy = best.mv_x // 4, best.mv_y // 4
    best_cost = best.cost
    # Cross search: horizontal & vertical lines at stride 2.
    cross = [
        (cx, cy)
        for d in range(2, merange + 1, 2)
        for cx, cy in ((d, 0), (-d, 0), (0, d), (0, -d))
    ]
    if cross:
        if win is not None:
            cross_costs = win.sads(cross)
        else:
            cross_costs = np.array(
                [_sad(cur, ref.block(base_y + cy, base_x + cx)) for cx, cy in cross]
            )
        for (cx, cy), cost_i in zip(cross, cross_costs):
            cost = float(cost_i)
            n_points += 1
            positions.append((cx, cy))
            better = cost < best_cost
            improvements.append(better)
            if better:
                best_cost, best_dx, best_dy = cost, cx, cy
    # Multi-hexagon grid: hexagons of growing radius around current best.
    for radius in (2, 4, 8):
        if radius > merange:
            break
        for hx, hy in _HEX_OFFSETS:
            cx = best_dx + hx * radius // 2
            cy = best_dy + hy * radius // 2
            if abs(cx) > merange or abs(cy) > merange:
                continue
            if win is not None:
                cost = win.sad(cx, cy)
            else:
                cost = _sad(cur, ref.block(base_y + cy, base_x + cx))
            n_points += 1
            positions.append((cx, cy))
            better = cost < best_cost
            improvements.append(better)
            if better:
                best_cost, best_dx, best_dy = cost, cx, cy
    # Final hexagon refinement from the grid winner.
    refine = _hex_search(
        cur, ref, merange, base_y, base_x, (best_dx, best_dy), win=win
    )
    if refine.cost < best_cost:
        result = refine
    else:
        result = MotionSearchResult(best_dx * 4, best_dy * 4, best_cost, 0, [])
    result.n_points += n_points
    result.positions = positions + result.positions
    result.improvements = improvements + result.improvements
    return result


def _esa_search(
    cur, ref: PaddedReference, merange, base_y, base_x, pred, *, use_satd=False
) -> MotionSearchResult:
    """Exhaustive search over the full window, vectorized.

    tesa additionally re-scores the best SAD candidates with SATD
    (Hadamard), as x264's transformed exhaustive search does.
    """
    y0 = base_y - merange + ref.pad
    x0 = base_x - merange + ref.pad
    span = 2 * merange + 16
    window = ref.plane[y0 : y0 + span, x0 : x0 + span]
    views = sliding_window_view(window, (16, 16))  # (2R+1, 2R+1, 16, 16)
    diffs = np.abs(views.astype(np.int64) - cur.astype(np.int64))
    sads = diffs.sum(axis=(2, 3))
    n_points = sads.size
    if use_satd:
        # Re-score the 8 best SAD positions with SATD.
        flat = np.argsort(sads, axis=None)[:8]
        best_cost = np.inf
        best_pos = (0, 0)
        if kernels.is_vectorized():
            iys, ixs = np.unravel_index(flat, sads.shape)
            costs = hadamard_sad_batch(cur, views[iys, ixs])
            for j in range(len(flat)):
                cost = float(costs[j])
                n_points += 1
                if cost < best_cost:
                    best_cost = cost
                    best_pos = (int(ixs[j]) - merange, int(iys[j]) - merange)
        else:
            for f in flat:
                iy, ix = divmod(int(f), sads.shape[1])
                cand = views[iy, ix]
                cost = hadamard_sad(cur, cand)
                n_points += 1
                if cost < best_cost:
                    best_cost = cost
                    best_pos = (ix - merange, iy - merange)
        best_dx, best_dy = best_pos
    else:
        iy, ix = np.unravel_index(int(np.argmin(sads)), sads.shape)
        best_dx, best_dy = int(ix) - merange, int(iy) - merange
        best_cost = float(sads[iy, ix])
    # Record a bounded sample of visited positions (the full raster).
    positions = [
        (dx, dy)
        for dy in range(-merange, merange + 1, max(1, merange // 4))
        for dx in range(-merange, merange + 1, max(1, merange // 4))
    ]
    return MotionSearchResult(
        best_dx * 4, best_dy * 4, float(best_cost), int(n_points), positions
    )


_METHODS = {
    "dia": _dia_search,
    "hex": _hex_search,
    "umh": _umh_search,
}


def motion_search(
    cur: np.ndarray,
    ref: PaddedReference,
    base_y: int,
    base_x: int,
    *,
    method: str = "hex",
    merange: int = 16,
    pred_mv: tuple[int, int] = (0, 0),
) -> MotionSearchResult:
    """Integer-pel motion search for a 16x16 block.

    ``pred_mv`` is the full-pel motion-vector prediction used as the
    search start (the median predictor in the encoder). Raises
    ``ValueError`` on an unknown method name.
    """
    if cur.shape != (16, 16):
        raise ValueError(f"expected 16x16 current block, got {cur.shape}")
    start = (
        int(np.clip(pred_mv[0], -merange, merange)),
        int(np.clip(pred_mv[1], -merange, merange)),
    )
    if method in _METHODS:
        return _METHODS[method](cur, ref, merange, base_y, base_x, start)
    if method == "esa":
        return _esa_search(cur, ref, merange, base_y, base_x, start)
    if method == "tesa":
        return _esa_search(cur, ref, merange, base_y, base_x, start, use_satd=True)
    raise ValueError(f"unknown motion estimation method {method!r}")


def subpel_refine(
    cur: np.ndarray,
    ref: PaddedReference,
    base_y: int,
    base_x: int,
    result: MotionSearchResult,
    *,
    subme: int,
) -> MotionSearchResult:
    """Fractional-pel refinement gated by ``subme`` (paper Table II row).

    subme 0-1: none; 2-3: half-pel; 4-5: quarter-pel; 6+: quarter-pel
    scored with SATD (x264 switches to SATD/RD at higher levels). Returns
    a new result; ``n_points`` counts additional evaluations.

    The refinement is greedy (each candidate position depends on the
    running best), so both backends walk the same sequential pattern; the
    vectorized backend only swaps in the cheap cost evaluation (hoisted
    float cast, full-pel interpolation shortcut, fixed-path SATD).
    """
    if subme < 2:
        return result
    steps: list[int] = [2]  # half-pel
    if subme >= 4:
        steps.append(1)  # quarter-pel
    use_satd = subme >= 6

    if kernels.is_vectorized():
        cur_f64 = cur.astype(np.float64)
        # cost_at is pure, and the drifting diamond revisits positions;
        # memoizing repeated evaluations returns the identical float while
        # the n_points accounting below still counts every visit, exactly
        # like the recomputing reference loop.
        cache: dict[tuple[int, int], float] = {}

        def cost_at(y4: int, x4: int) -> float:
            key = (y4, x4)
            cost = cache.get(key)
            if cost is None:
                block = ref.half_pel_block(base_y * 4 + y4, base_x * 4 + x4)
                if use_satd:
                    cost = satd_16x16(cur_f64 - block)
                else:
                    cost = float(np.abs(cur_f64 - block).sum())
                cache[key] = cost
            return cost

    else:

        def cost_at(y4: int, x4: int) -> float:
            block = ref.half_pel_block(base_y * 4 + y4, base_x * 4 + x4)
            if use_satd:
                return hadamard_sad(cur, block)
            return float(np.sum(np.abs(cur.astype(np.float64) - block)))

    best_x, best_y = result.mv_x, result.mv_y
    best_cost = cost_at(best_y, best_x)
    n_points = result.n_points + 1
    for step in steps:
        improved = True
        iters = 0
        while improved and iters < 4:
            improved = False
            iters += 1
            for dx, dy in _DIA_OFFSETS:
                cx, cy = best_x + dx * step, best_y + dy * step
                cost = cost_at(cy, cx)
                n_points += 1
                if cost < best_cost:
                    best_cost, best_x, best_y = cost, cx, cy
                    improved = True
    return MotionSearchResult(
        best_x, best_y, best_cost, n_points, result.positions, result.early_terminated
    )


def fetch_prediction(
    ref: PaddedReference, y: int, x: int, mv_x4: int, mv_y4: int
) -> np.ndarray:
    """Fetch the 16x16 prediction for a quarter-pel MV (float64).

    Shared by the encoder and decoder so both sides produce bit-identical
    predictions: full-pel MVs use the direct block fetch, fractional MVs
    use bilinear interpolation.
    """
    if mv_x4 % 4 == 0 and mv_y4 % 4 == 0:
        return ref.block(y + (mv_y4 >> 2), x + (mv_x4 >> 2)).astype(np.float64)
    return ref.half_pel_block(y * 4 + mv_y4, x * 4 + mv_x4)
