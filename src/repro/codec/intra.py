"""Intra prediction: spatial prediction from reconstructed neighbors.

Implements the paper's §II-A "intra-frame encoding" stage. We support the
16x16 macroblock modes (DC / vertical / horizontal / plane, as in H.264)
and a 4x4 variant where each sub-block predicts from already-reconstructed
pixels, capturing the sequential dependency structure that makes i4x4
slower but more precise.

:func:`predict_4x4_blocks` is backend-dispatched (see
:mod:`repro.codec.kernels`): the fast-mode-decision approximation
predicts every sub-block from a *static* working reconstruction (source
pixels pasted in once, never updated mid-macroblock), so all 16
sub-blocks are independent and the ``vectorized`` backend scores the
DC/V/H candidates for the whole macroblock in a handful of batched
reductions — with the mode choice, prediction bytes, SAD accumulation
order, and modes-tried count identical to the reference loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec import kernels
from repro.codec.transform import blockify_16x16
from repro.codec.types import IntraMode

__all__ = ["IntraPrediction", "predict_16x16", "best_intra_16x16", "predict_4x4_blocks"]


@dataclass(frozen=True)
class IntraPrediction:
    """Result of an intra mode search."""

    mode: IntraMode
    prediction: np.ndarray  # uint8 (16, 16)
    sad: float
    n_modes_tried: int


def _neighbors(
    recon: np.ndarray, y: int, x: int, size: int
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Top row and left column of reconstructed pixels, or None at edges."""
    top = recon[y - 1, x : x + size].astype(np.float64) if y > 0 else None
    left = recon[y : y + size, x - 1].astype(np.float64) if x > 0 else None
    return top, left


def _dc_pred(top: np.ndarray | None, left: np.ndarray | None, size: int) -> np.ndarray:
    if top is not None and left is not None:
        dc = (top.sum() + left.sum()) / (2 * size)
    elif top is not None:
        dc = top.mean()
    elif left is not None:
        dc = left.mean()
    else:
        dc = 128.0
    return np.full((size, size), dc)


def _plane_pred(top: np.ndarray, left: np.ndarray, size: int) -> np.ndarray:
    """H.264-style plane (gradient) prediction."""
    idx = np.arange(size, dtype=np.float64)
    h_grad = float(np.polyfit(idx, top, 1)[0])
    v_grad = float(np.polyfit(idx, left, 1)[0])
    base = (top[-1] + left[-1]) / 2.0
    yy, xx = np.meshgrid(idx - (size - 1), idx - (size - 1), indexing="ij")
    return base + h_grad * xx + v_grad * yy


def predict_16x16(
    recon: np.ndarray, mb_y: int, mb_x: int, mode: IntraMode
) -> np.ndarray:
    """Predict a 16x16 macroblock at pixel position (mb_y, mb_x)."""
    top, left = _neighbors(recon, mb_y, mb_x, 16)
    if mode is IntraMode.DC:
        pred = _dc_pred(top, left, 16)
    elif mode is IntraMode.VERTICAL:
        pred = np.tile(top, (16, 1)) if top is not None else _dc_pred(None, left, 16)
    elif mode is IntraMode.HORIZONTAL:
        pred = (
            np.tile(left[:, None], (1, 16))
            if left is not None
            else _dc_pred(top, None, 16)
        )
    elif mode is IntraMode.PLANE:
        if top is None or left is None:
            pred = _dc_pred(top, left, 16)
        else:
            pred = _plane_pred(top, left, 16)
    else:
        raise ValueError(f"unknown intra mode {mode!r}")
    return np.clip(np.round(pred), 0, 255).astype(np.uint8)


def best_intra_16x16(
    source: np.ndarray, recon: np.ndarray, mb_y: int, mb_x: int
) -> IntraPrediction:
    """Try all 16x16 intra modes and return the lowest-SAD one."""
    if source.shape != (16, 16):
        raise ValueError(f"expected 16x16 source block, got {source.shape}")
    src = source.astype(np.float64)
    if kernels.is_vectorized():
        return _best_intra_16x16_vectorized(src, recon, mb_y, mb_x)
    best: IntraPrediction | None = None
    for mode in IntraMode:
        pred = predict_16x16(recon, mb_y, mb_x, mode)
        sad = float(np.sum(np.abs(src - pred)))
        if best is None or sad < best.sad:
            best = IntraPrediction(mode, pred, sad, len(IntraMode))
    assert best is not None
    return best


def _best_intra_16x16_vectorized(
    src: np.ndarray, recon: np.ndarray, mb_y: int, mb_x: int
) -> IntraPrediction:
    """All four 16x16 modes scored with one stacked clip and one reduction.

    Fetches the neighbors once, materializes the four float predictions
    into one ``(4, 16, 16)`` stack, and rounds/clips/scores them together;
    every per-pixel value and each mode's contiguous 256-element SAD
    reduction match the reference's per-mode computation, and the replayed
    strict-``<`` scan keeps its first-minimum tie-break.
    """
    top, left = _neighbors(recon, mb_y, mb_x, 16)
    if top is not None and left is not None:
        dc = (top.sum() + left.sum()) / 32.0
    elif top is not None:
        dc = top.mean()
    elif left is not None:
        dc = left.mean()
    else:
        dc = 128.0
    preds = np.empty((4, 16, 16), dtype=np.float64)
    preds[0] = dc
    preds[1] = top[None, :] if top is not None else dc
    preds[2] = left[:, None] if left is not None else dc
    if top is not None and left is not None:
        preds[3] = _plane_pred(top, left, 16)
    else:
        preds[3] = dc
    u8 = np.minimum(np.maximum(np.round(preds), 0.0), 255.0).astype(np.uint8)
    sads = np.abs(src[None] - u8).reshape(4, -1).sum(axis=1)
    best_i = 0
    best_sad = float(sads[0])
    for i in (1, 2, 3):
        if float(sads[i]) < best_sad:
            best_sad = float(sads[i])
            best_i = i
    return IntraPrediction(IntraMode(best_i), u8[best_i], best_sad, len(IntraMode))


def predict_4x4_blocks(
    source: np.ndarray, recon: np.ndarray, mb_y: int, mb_x: int
) -> tuple[np.ndarray, float, int]:
    """Sequential 4x4 intra prediction over one macroblock.

    Each 4x4 block picks the best of DC/V/H using neighbors from the
    *working reconstruction* (neighbor blocks predicted earlier in the same
    macroblock), mirroring H.264's i4x4 dependency chain. Returns
    ``(prediction, total_sad, modes_tried)``; prediction uses the source
    block itself as the "reconstruction" for in-MB neighbors, a standard
    fast-mode-decision approximation.
    """
    if source.shape != (16, 16):
        raise ValueError(f"expected 16x16 source block, got {source.shape}")
    if kernels.is_vectorized():
        return _predict_4x4_blocks_vectorized(source, recon, mb_y, mb_x)
    prediction = np.zeros((16, 16), dtype=np.uint8)
    work = recon.copy()
    work[mb_y : mb_y + 16, mb_x : mb_x + 16] = source
    total_sad = 0.0
    modes_tried = 0
    for by in range(4):
        for bx in range(4):
            y = mb_y + by * 4
            x = mb_x + bx * 4
            src = source[by * 4 : by * 4 + 4, bx * 4 : bx * 4 + 4].astype(np.float64)
            top, left = _neighbors(work, y, x, 4)
            candidates = [_dc_pred(top, left, 4)]
            if top is not None:
                candidates.append(np.tile(top, (4, 1)))
            if left is not None:
                candidates.append(np.tile(left[:, None], (1, 4)))
            best_pred = None
            best_sad = np.inf
            for cand in candidates:
                modes_tried += 1
                sad = float(np.sum(np.abs(src - cand)))
                if sad < best_sad:
                    best_sad = sad
                    best_pred = cand
            assert best_pred is not None
            prediction[by * 4 : by * 4 + 4, bx * 4 : bx * 4 + 4] = np.clip(
                np.round(best_pred), 0, 255
            ).astype(np.uint8)
            total_sad += best_sad
    return prediction, total_sad, modes_tried


def _predict_4x4_blocks_vectorized(
    source: np.ndarray, recon: np.ndarray, mb_y: int, mb_x: int
) -> tuple[np.ndarray, float, int]:
    """Batched i4x4 mode decision over all 16 sub-blocks at once.

    The working reconstruction is static during the loop, so the sub-block
    candidate SADs have no sequential dependency; only the final running
    best / accumulation is replayed per block to keep float ordering and
    tie-breaks (DC, then V, then H, strict ``<``) identical.
    """
    srcs = blockify_16x16(source).astype(np.float64)  # (16, 4, 4), raster order
    four = np.arange(4)
    ys = mb_y + np.repeat(four, 4) * 4  # per-block top-left pixel rows
    xs = mb_x + np.tile(four, 4) * 4
    has_top = ys > 0
    has_left = xs > 0
    # Neighbors come from the source-pasted working recon, which only
    # differs from ``recon`` inside the macroblock — a 17x17 patch (one
    # guard row/column of true recon, then the source) holds every pixel
    # the gathers can touch, without copying the whole frame.
    patch = np.empty((17, 17), dtype=np.float64)
    patch[1:, 1:] = source
    patch[0, 1:] = recon[mb_y - 1, mb_x : mb_x + 16] if mb_y > 0 else 0.0
    patch[1:, 0] = recon[mb_y : mb_y + 16, mb_x - 1] if mb_x > 0 else 0.0
    patch[0, 0] = 0.0
    rows = np.repeat(four, 4) * 4  # patch row of each block's top neighbor
    cols = np.tile(four, 4) * 4  # patch col of each block's left neighbor
    tops = patch[rows[:, None], cols[:, None] + 1 + four[None, :]]
    lefts = patch[rows[:, None] + 1 + four[None, :], cols[:, None]]
    tsum = tops.sum(axis=1)
    lsum = lefts.sum(axis=1)
    dc = np.where(
        has_top & has_left,
        (tsum + lsum) / 8.0,
        np.where(has_top, tsum / 4.0, np.where(has_left, lsum / 4.0, 128.0)),
    )
    sad_dc = np.abs(srcs - dc[:, None, None]).reshape(16, -1).sum(axis=1)
    sad_v = np.abs(srcs - tops[:, None, :]).reshape(16, -1).sum(axis=1)
    sad_h = np.abs(srcs - lefts[:, :, None]).reshape(16, -1).sum(axis=1)
    # Running-best selection in DC -> V -> H order with strict < wins,
    # expressed as masked updates (same comparisons as the reference loop).
    best = sad_dc.copy()
    kind = np.zeros(16, dtype=np.int8)
    mask = has_top & (sad_v < best)
    best[mask] = sad_v[mask]
    kind[mask] = 1
    mask = has_left & (sad_h < best)
    best[mask] = sad_h[mask]
    kind[mask] = 2
    modes_tried = 16 + int(has_top.sum()) + int(has_left.sum())
    # Round/clip only the 1-D generators; broadcasting replicates them
    # exactly like np.tile would in the reference path.
    dc_u8 = np.clip(np.round(dc), 0, 255).astype(np.uint8)
    tops_u8 = np.clip(np.round(tops), 0, 255).astype(np.uint8)
    lefts_u8 = np.clip(np.round(lefts), 0, 255).astype(np.uint8)
    k = kind[:, None, None]
    pred_blocks = np.where(
        k == 0,
        dc_u8[:, None, None],
        np.where(k == 1, tops_u8[:, None, :], lefts_u8[:, :, None]),
    ).astype(np.uint8)
    prediction = (
        pred_blocks.reshape(4, 4, 4, 4).transpose(0, 2, 1, 3).reshape(16, 16)
    )
    # Accumulate per-block bests sequentially to keep float ordering.
    total_sad = 0.0
    for v in best:
        total_sad += float(v)
    return prediction, total_sad, modes_tried
