"""Intra prediction: spatial prediction from reconstructed neighbors.

Implements the paper's §II-A "intra-frame encoding" stage. We support the
16x16 macroblock modes (DC / vertical / horizontal / plane, as in H.264)
and a 4x4 variant where each sub-block predicts from already-reconstructed
pixels, capturing the sequential dependency structure that makes i4x4
slower but more precise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.types import IntraMode

__all__ = ["IntraPrediction", "predict_16x16", "best_intra_16x16", "predict_4x4_blocks"]


@dataclass(frozen=True)
class IntraPrediction:
    """Result of an intra mode search."""

    mode: IntraMode
    prediction: np.ndarray  # uint8 (16, 16)
    sad: float
    n_modes_tried: int


def _neighbors(
    recon: np.ndarray, y: int, x: int, size: int
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Top row and left column of reconstructed pixels, or None at edges."""
    top = recon[y - 1, x : x + size].astype(np.float64) if y > 0 else None
    left = recon[y : y + size, x - 1].astype(np.float64) if x > 0 else None
    return top, left


def _dc_pred(top: np.ndarray | None, left: np.ndarray | None, size: int) -> np.ndarray:
    if top is not None and left is not None:
        dc = (top.sum() + left.sum()) / (2 * size)
    elif top is not None:
        dc = top.mean()
    elif left is not None:
        dc = left.mean()
    else:
        dc = 128.0
    return np.full((size, size), dc)


def _plane_pred(top: np.ndarray, left: np.ndarray, size: int) -> np.ndarray:
    """H.264-style plane (gradient) prediction."""
    idx = np.arange(size, dtype=np.float64)
    h_grad = float(np.polyfit(idx, top, 1)[0])
    v_grad = float(np.polyfit(idx, left, 1)[0])
    base = (top[-1] + left[-1]) / 2.0
    yy, xx = np.meshgrid(idx - (size - 1), idx - (size - 1), indexing="ij")
    return base + h_grad * xx + v_grad * yy


def predict_16x16(
    recon: np.ndarray, mb_y: int, mb_x: int, mode: IntraMode
) -> np.ndarray:
    """Predict a 16x16 macroblock at pixel position (mb_y, mb_x)."""
    top, left = _neighbors(recon, mb_y, mb_x, 16)
    if mode is IntraMode.DC:
        pred = _dc_pred(top, left, 16)
    elif mode is IntraMode.VERTICAL:
        pred = np.tile(top, (16, 1)) if top is not None else _dc_pred(None, left, 16)
    elif mode is IntraMode.HORIZONTAL:
        pred = (
            np.tile(left[:, None], (1, 16))
            if left is not None
            else _dc_pred(top, None, 16)
        )
    elif mode is IntraMode.PLANE:
        if top is None or left is None:
            pred = _dc_pred(top, left, 16)
        else:
            pred = _plane_pred(top, left, 16)
    else:
        raise ValueError(f"unknown intra mode {mode!r}")
    return np.clip(np.round(pred), 0, 255).astype(np.uint8)


def best_intra_16x16(
    source: np.ndarray, recon: np.ndarray, mb_y: int, mb_x: int
) -> IntraPrediction:
    """Try all 16x16 intra modes and return the lowest-SAD one."""
    if source.shape != (16, 16):
        raise ValueError(f"expected 16x16 source block, got {source.shape}")
    best: IntraPrediction | None = None
    src = source.astype(np.float64)
    for mode in IntraMode:
        pred = predict_16x16(recon, mb_y, mb_x, mode)
        sad = float(np.sum(np.abs(src - pred)))
        if best is None or sad < best.sad:
            best = IntraPrediction(mode, pred, sad, len(IntraMode))
    assert best is not None
    return best


def predict_4x4_blocks(
    source: np.ndarray, recon: np.ndarray, mb_y: int, mb_x: int
) -> tuple[np.ndarray, float, int]:
    """Sequential 4x4 intra prediction over one macroblock.

    Each 4x4 block picks the best of DC/V/H using neighbors from the
    *working reconstruction* (neighbor blocks predicted earlier in the same
    macroblock), mirroring H.264's i4x4 dependency chain. Returns
    ``(prediction, total_sad, modes_tried)``; prediction uses the source
    block itself as the "reconstruction" for in-MB neighbors, a standard
    fast-mode-decision approximation.
    """
    if source.shape != (16, 16):
        raise ValueError(f"expected 16x16 source block, got {source.shape}")
    prediction = np.zeros((16, 16), dtype=np.uint8)
    work = recon.copy()
    work[mb_y : mb_y + 16, mb_x : mb_x + 16] = source
    total_sad = 0.0
    modes_tried = 0
    for by in range(4):
        for bx in range(4):
            y = mb_y + by * 4
            x = mb_x + bx * 4
            src = source[by * 4 : by * 4 + 4, bx * 4 : bx * 4 + 4].astype(np.float64)
            top, left = _neighbors(work, y, x, 4)
            candidates = [_dc_pred(top, left, 4)]
            if top is not None:
                candidates.append(np.tile(top, (4, 1)))
            if left is not None:
                candidates.append(np.tile(left[:, None], (1, 4)))
            best_pred = None
            best_sad = np.inf
            for cand in candidates:
                modes_tried += 1
                sad = float(np.sum(np.abs(src - cand)))
                if sad < best_sad:
                    best_sad = sad
                    best_pred = cand
            assert best_pred is not None
            prediction[by * 4 : by * 4 + 4, bx * 4 : bx * 4 + 4] = np.clip(
                np.round(best_pred), 0, 255
            ).astype(np.uint8)
            total_sad += best_sad
    return prediction, total_sad, modes_tried
