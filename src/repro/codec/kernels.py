"""Pluggable kernel-backend registry (``REPRO_KERNELS=<backend>``).

The codec's hot loops (SATD/DCT/quant in :mod:`repro.codec.transform`,
candidate scoring in :mod:`repro.codec.motion`, 4x4 intra prediction in
:mod:`repro.codec.intra`, edge filtering in :mod:`repro.codec.deblock`,
run-level coding in :mod:`repro.codec.entropy`) dispatch through a
registry of interchangeable backends:

- ``reference`` — the original per-block / per-candidate Python loops,
  kept verbatim as the readable specification of each kernel;
- ``vectorized`` — batched NumPy rewrites (whole-frame blockify, fixed
  contraction paths instead of per-call ``einsum`` path searches, bulk
  bit appends) that produce **bit-identical** outputs;
- ``batched`` (:mod:`repro.codec.backend_batched`) — everything the
  vectorized backend does, plus whole-GOP/frame-level hoists: per-frame
  float casts, strided 4x4 source views, and one bulk bit append per
  macroblock/plane instead of one per 4x4 block;
- ``numba`` (:mod:`repro.codec.backend_numba`) — opt-in JIT compiles of
  the dominant SATD kernels on top of ``batched``; registered as
  unavailable (never an import error) when numba is not installed.

Bit-identity is a hard contract, enforced by
``tests/property/test_kernel_equivalence.py`` for every registered
backend: all backends yield the same bitstream, reconstruction,
search-point counts, and visited positions, so sweep cache entries,
golden trends, and the µarch traces are backend-independent.

A backend is a :class:`Backend` record: a capability set (the hot-path
predicate :func:`is_vectorized` is a capability check, so new backends
inherit every vectorized dispatch site), an optional per-kernel override
table consulted via :func:`impl`, a ``base`` backend that fills in the
kernels it does not override, and an availability flag so an optional
dependency degrades to its base with a visible warning instead of a
crash.

The active backend resolves, in order, from:

1. the innermost :func:`backend_scope` context (tests, the bench
   harness),
2. an explicit :func:`select_backend` call (`Settings.apply` routes
   here),
3. the ``REPRO_KERNELS`` environment variable,
4. the default, ``vectorized``.

If the selected backend is registered but unavailable (e.g. ``numba``
without numba installed), resolution walks its ``base`` chain to the
first available backend and warns once. ``set_backend`` /
``use_backend`` remain as warn-once deprecation shims.
"""

from __future__ import annotations

import os
import sys
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

__all__ = [
    "Backend",
    "KERNEL_BACKENDS",
    "DEFAULT_BACKEND",
    "active_backend",
    "all_backends",
    "available_backends",
    "backend_info",
    "backend_scope",
    "has_capability",
    "impl",
    "is_vectorized",
    "register_backend",
    "select_backend",
    "set_backend",
    "use_backend",
]

DEFAULT_BACKEND = "vectorized"

_ENV_VAR = "REPRO_KERNELS"


@dataclass(frozen=True)
class Backend:
    """One registered kernel backend.

    ``capabilities`` is what dispatch sites test (``"vectorized"`` turns
    on every NumPy fast path; ``"batched"`` additionally enables the
    frame-level hoists in the encoder). ``impls`` maps kernel ids (e.g.
    ``"entropy.encode_blocks"``) to override callables; kernels without
    an override fall through to the ``base`` backend's override, and
    ultimately to the inline twin selected by the capability checks.
    ``unavailable_reason`` marks a backend whose optional dependency is
    missing: selecting it degrades to ``base`` with a warning.
    """

    name: str
    capabilities: frozenset[str] = frozenset()
    impls: Mapping[str, Callable] = field(default_factory=dict)
    base: str | None = None
    description: str = ""
    unavailable_reason: str | None = None

    @property
    def available(self) -> bool:
        """Whether the backend can actually run in this process."""
        return self.unavailable_reason is None


#: name -> Backend, in registration order.
_REGISTRY: dict[str, Backend] = {}
#: Explicitly selected backend (``select_backend``); ``None`` defers to
#: the environment / default.
_forced: str | None = None
#: Stack of ``backend_scope`` overrides; the innermost wins.
_override_stack: list[str] = []
#: Flattened per-backend kernel-override tables (built lazily).
_impl_cache: dict[str, dict[str, Callable]] = {}
#: Availability-fallback resolution cache (name -> first available name).
_resolve_cache: dict[str, str] = {}
#: Selection snapshot cache: (scope top, forced, raw env) ->
#: (resolved name, capabilities, flattened impls). The hot dispatch
#: predicates run per macroblock, so resolution must be one dict hit.
_selection_cache: dict[
    tuple[str | None, str | None, str | None],
    tuple[str, frozenset[str], dict[str, Callable]],
] = {}
#: Warnings already emitted (once per message key).
_warned: set[str] = set()

#: All registered backend names, in registration order (kept as a module
#: constant for the historical tuple-shaped API).
KERNEL_BACKENDS: tuple[str, ...] = ()


def _warn_once(key: str, message: str, category: type[Warning] = UserWarning) -> None:
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, category, stacklevel=3)
    if category is UserWarning:
        # Availability degradations must be visible even under warning
        # suppression: a run silently measuring the wrong backend is the
        # failure mode this guards against.
        print(f"repro.codec.kernels: {message}", file=sys.stderr)


def register_backend(
    name: str,
    impls: Mapping[str, Callable] | None = None,
    capabilities: Iterator[str] | tuple[str, ...] | frozenset[str] = (),
    *,
    base: str | None = None,
    description: str = "",
    unavailable_reason: str | None = None,
) -> Backend:
    """Register (or replace) a kernel backend and return its record.

    ``base`` must already be registered; an unavailable backend (non-None
    ``unavailable_reason``) must name a base to degrade to. Registration
    invalidates the resolution caches, so a replacement takes effect
    immediately.
    """
    if not name or not name.replace("_", "").replace("-", "").isalnum():
        raise ValueError(f"invalid backend name {name!r}")
    if base is not None and base not in _REGISTRY:
        raise ValueError(
            f"backend {name!r} declares unknown base {base!r}; "
            f"registered: {', '.join(_REGISTRY) or '(none)'}"
        )
    if unavailable_reason is not None and base is None:
        raise ValueError(
            f"unavailable backend {name!r} must declare a base to fall back to"
        )
    backend = Backend(
        name=name,
        capabilities=frozenset(capabilities),
        impls=dict(impls or {}),
        base=base,
        description=description,
        unavailable_reason=unavailable_reason,
    )
    _REGISTRY[name] = backend
    _impl_cache.clear()
    _resolve_cache.clear()
    _selection_cache.clear()
    global KERNEL_BACKENDS
    KERNEL_BACKENDS = tuple(_REGISTRY)
    return backend


def all_backends() -> tuple[Backend, ...]:
    """Every registered backend record, in registration order."""
    return tuple(_REGISTRY.values())


def available_backends() -> tuple[str, ...]:
    """Names of the backends that can actually run in this process."""
    return tuple(b.name for b in _REGISTRY.values() if b.available)


def backend_info(name: str) -> Backend:
    """The :class:`Backend` record for ``name`` (``ValueError`` if unknown)."""
    return _REGISTRY[_validate(name)]


def _validate(name: str) -> str:
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"expected one of {', '.join(_REGISTRY)}"
        )
    return name


def _resolve_available(name: str) -> str:
    """First available backend on ``name``'s base chain (warns once)."""
    cached = _resolve_cache.get(name)
    if cached is not None:
        return cached
    backend = _REGISTRY[name]
    while not backend.available:
        assert backend.base is not None  # enforced at registration
        _warn_once(
            f"unavailable:{backend.name}",
            f"kernel backend {backend.name!r} is unavailable "
            f"({backend.unavailable_reason}); falling back to "
            f"{backend.base!r}",
        )
        backend = _REGISTRY[backend.base]
    _resolve_cache[name] = backend.name
    return backend.name


def _selection() -> tuple[str, frozenset[str], dict[str, Callable]]:
    """Resolve the active selection to one memoized snapshot.

    The key embeds everything the selection depends on — the innermost
    ``backend_scope``, the ``select_backend`` force, and the *raw*
    environment value — so scope pushes/pops and reselects need no
    explicit invalidation; only ``register_backend`` clears the cache.
    The environment is consulted (and re-read, every call — callers may
    flip ``REPRO_KERNELS`` mid-process) only when neither a scope nor a
    forced selection shadows it: ``os.environ`` lookups are ~µs-scale,
    too slow for a per-macroblock predicate.
    """
    if _override_stack:
        key = (_override_stack[-1], None, None)
    elif _forced is not None:
        key = (None, _forced, None)
    else:
        key = (None, None, os.environ.get(_ENV_VAR))
    snapshot = _selection_cache.get(key)
    if snapshot is None:
        scoped, forced, env = key
        if scoped is not None:
            name = _resolve_available(scoped)
        elif forced is not None:
            name = _resolve_available(forced)
        elif env:
            name = _resolve_available(_validate(env.strip().lower()))
        else:
            name = _resolve_available(DEFAULT_BACKEND)
        snapshot = (name, _REGISTRY[name].capabilities, _flat_impls(name))
        _selection_cache[key] = snapshot
    return snapshot


def active_backend() -> str:
    """The backend every dispatched kernel uses right now.

    Always names an *available* backend: selecting an unavailable one
    (e.g. ``numba`` without numba installed) resolves to the first
    available backend on its base chain, with a one-time warning.
    """
    return _selection()[0]


def is_vectorized() -> bool:
    """Fast predicate for the hot-path dispatch sites.

    True for every backend with the ``"vectorized"`` capability
    (``vectorized``, ``batched``, ``numba``), so the NumPy fast paths
    stay on when a higher backend only overrides a few kernels.
    """
    return "vectorized" in _selection()[1]


def has_capability(capability: str) -> bool:
    """Whether the active backend declares ``capability``."""
    return capability in _selection()[1]


def _flat_impls(name: str) -> dict[str, Callable]:
    flat = _impl_cache.get(name)
    if flat is None:
        backend = _REGISTRY[name]
        flat = dict(_flat_impls(backend.base)) if backend.base else {}
        flat.update(backend.impls)
        _impl_cache[name] = flat
    return flat


def impl(kernel_id: str) -> Callable | None:
    """The active backend's override for ``kernel_id``, if any.

    Walks the backend's ``base`` chain (nearest override wins); returns
    ``None`` when no registered backend on the chain overrides the
    kernel, in which case the dispatch site uses its inline twin.
    """
    return _selection()[2].get(kernel_id)


def select_backend(name: str | None) -> None:
    """Select a backend process-wide (``None`` reverts to env/default).

    Unknown names raise ``ValueError`` eagerly, listing the registered
    backends; a registered-but-unavailable backend is accepted and
    degrades to its base at dispatch time with a warning.
    """
    global _forced
    _forced = None if name is None else _validate(name)


@contextmanager
def backend_scope(name: str) -> Iterator[str]:
    """Scoped backend override (nestable; the innermost context wins).

    The previous backend is restored even when the body raises.
    """
    _override_stack.append(_validate(name))
    try:
        yield name
    finally:
        _override_stack.pop()


# ----------------------------------------------------------------------
# Deprecated compatibility surface (PR 5 convention: warn once).
# ----------------------------------------------------------------------

def set_backend(name: str | None) -> None:
    """Deprecated alias of :func:`select_backend` (warns once)."""
    _warn_once(
        "deprecated:set_backend",
        "kernels.set_backend is deprecated; use kernels.select_backend",
        DeprecationWarning,
    )
    select_backend(name)


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Deprecated alias of :func:`backend_scope` (warns once)."""
    _warn_once(
        "deprecated:use_backend",
        "kernels.use_backend is deprecated; use kernels.backend_scope",
        DeprecationWarning,
    )
    with backend_scope(name) as active:
        yield active


# ----------------------------------------------------------------------
# Built-in backends. The extension modules register themselves through
# the hook below so they never import this module at import time.
# ----------------------------------------------------------------------

register_backend(
    "reference",
    description="scalar per-block Python loops (the readable specification)",
)
register_backend(
    "vectorized",
    capabilities=("vectorized",),
    base="reference",
    description="batched NumPy rewrites, bit-identical to reference",
)


def _register_builtin_extensions() -> None:
    from repro.codec import backend_batched, backend_numba

    backend_batched.register(register_backend)
    backend_numba.register(register_backend)


_register_builtin_extensions()
