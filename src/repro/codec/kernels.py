"""Kernel backend switch: ``REPRO_KERNELS=reference|vectorized``.

The codec's hot loops (SATD/DCT/quant in :mod:`repro.codec.transform`,
candidate scoring in :mod:`repro.codec.motion`, 4x4 intra prediction in
:mod:`repro.codec.intra`, edge filtering in :mod:`repro.codec.deblock`,
run-level coding in :mod:`repro.codec.entropy`) each exist in two
implementations:

- ``reference`` — the original per-block / per-candidate Python loops,
  kept verbatim as the readable specification of each kernel;
- ``vectorized`` — batched NumPy rewrites (whole-frame blockify, fixed
  contraction paths instead of per-call ``einsum`` path searches, bulk
  bit appends) that produce **bit-identical** outputs.

Bit-identity is a hard contract, enforced by
``tests/property/test_kernel_equivalence.py``: both backends yield the
same bitstream, reconstruction, search-point counts, and visited
positions, so sweep cache entries, golden trends, and the µarch traces
are backend-independent.

The active backend resolves, in order, from:

1. the innermost :func:`use_backend` context (tests, the bench harness),
2. an explicit :func:`set_backend` call,
3. the ``REPRO_KERNELS`` environment variable,
4. the default, ``vectorized``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "KERNEL_BACKENDS",
    "DEFAULT_BACKEND",
    "active_backend",
    "is_vectorized",
    "set_backend",
    "use_backend",
]

KERNEL_BACKENDS = ("reference", "vectorized")
DEFAULT_BACKEND = "vectorized"

_ENV_VAR = "REPRO_KERNELS"

#: Explicitly selected backend (``set_backend``); ``None`` defers to the
#: environment / default.
_forced: str | None = None
#: Stack of ``use_backend`` overrides; the innermost wins.
_override_stack: list[str] = []


def _validate(name: str) -> str:
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"expected one of {', '.join(KERNEL_BACKENDS)}"
        )
    return name


def active_backend() -> str:
    """The backend every dispatched kernel uses right now."""
    if _override_stack:
        return _override_stack[-1]
    if _forced is not None:
        return _forced
    env = os.environ.get(_ENV_VAR)
    if env:
        return _validate(env.strip().lower())
    return DEFAULT_BACKEND


def is_vectorized() -> bool:
    """Fast predicate for the hot-path dispatch sites."""
    return active_backend() == "vectorized"


def set_backend(name: str | None) -> None:
    """Select a backend process-wide (``None`` reverts to env/default)."""
    global _forced
    _forced = None if name is None else _validate(name)


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Scoped backend override (nestable; the innermost context wins)."""
    _override_stack.append(_validate(name))
    try:
        yield name
    finally:
        _override_stack.pop()
