"""The decoder: parses the bitstream back into frames.

Mirrors the encoder's reconstruction path exactly — same prediction
fetches, same dequantization and inverse transform, same deblocking —
so ``decode(encode(video)).frames == encoder reconstruction`` holds
bit-exactly (verified by the round-trip integration tests). The decoding
stage is deterministic and much cheaper than encoding, as the paper notes
in §II-A; like the encoder it reports its kernel activity to an optional
:class:`~repro.trace.recorder.Tracer` so a *full transcode* (decode +
re-encode) can be profiled end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.chroma import decode_chroma_plane
from repro.codec.deblock import deblock_plane
from repro.codec.entropy import BitReader, decode_block, read_se, read_ue
from repro.codec.intra import predict_16x16
from repro.codec.motion import PaddedReference, fetch_prediction
from repro.codec.quant import dequantize
from repro.codec.transform import inverse_4x4, unblockify_16x16
from repro.codec.types import FrameType, IntraMode, MotionVector
from repro.trace.recorder import NullTracer, Tracer
from repro.video.frame import Frame, FrameSequence

__all__ = ["Decoder", "DecodeResult", "decode"]

_ID_TO_FRAME_TYPE = {0: FrameType.I, 1: FrameType.P, 2: FrameType.B}
# Must match encoder._MODE_IDS.
_SKIP, _INTER16, _INTER8, _INTER4, _BI, _INTRA16, _INTRA4, _INTRA8 = range(8)

_REF_PAD = 88  # >= encoder's merange + 24 upper bound (64 + 24)


@dataclass
class DecodeResult:
    """Decoded clip plus per-frame metadata."""

    video: FrameSequence
    frame_types: list[FrameType]  # display order
    frame_qps: list[int]  # display order


@dataclass
class _Anchor:
    display_index: int
    padded: PaddedReference
    chroma: tuple[np.ndarray, np.ndarray] | None = None


class Decoder:
    """Stateless-between-calls bitstream decoder."""

    def __init__(self, *, tracer: Tracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else NullTracer()

    def decode(self, bitstream: bytes) -> DecodeResult:
        reader = BitReader(bitstream)
        width = read_ue(reader)
        height = read_ue(reader)
        fps = read_ue(reader) / 1000.0
        n_frames = read_ue(reader)
        deblock_enabled = read_ue(reader) == 1
        deblock_offset = read_se(reader)
        chroma_active = read_ue(reader) == 1
        if width <= 0 or height <= 0 or n_frames <= 0 or fps <= 0:
            raise ValueError("corrupt stream header")
        # Sanity bounds: a hostile or damaged header must not drive huge
        # allocations or unbounded decode loops.
        if width > 16384 or height > 16384 or n_frames > 100_000 or fps > 1000:
            raise ValueError("implausible stream header (corrupt or hostile)")
        chroma_shape = ((height + 1) // 2, (width + 1) // 2)

        pad_h = (height + 15) // 16 * 16
        pad_w = (width + 15) // 16 * 16
        n_mb_y, n_mb_x = pad_h // 16, pad_w // 16

        decoded: dict[int, np.ndarray] = {}
        decoded_chroma: dict[int, tuple[np.ndarray, np.ndarray] | None] = {}
        types: dict[int, FrameType] = {}
        qps: dict[int, int] = {}
        anchors: list[_Anchor] = []

        for _ in range(n_frames):
            disp_idx = read_ue(reader)
            ftype = _ID_TO_FRAME_TYPE[read_ue(reader)]
            base_qp = read_ue(reader)
            self.tracer.begin_frame(ftype.value, disp_idx)
            recon = self._decode_frame(
                reader, ftype, base_qp, disp_idx, anchors, n_mb_y, n_mb_x, pad_w
            )
            chroma: tuple[np.ndarray, np.ndarray] | None = None
            if chroma_active:
                chroma = self._decode_chroma(
                    reader, chroma_shape, ftype, disp_idx, anchors, base_qp
                )
            if deblock_enabled:
                recon, n_edges = deblock_plane(
                    recon, base_qp, offset=deblock_offset
                )
                self.tracer.kernel("deblock", iters=n_edges)
            decoded[disp_idx] = recon
            decoded_chroma[disp_idx] = chroma
            types[disp_idx] = ftype
            qps[disp_idx] = base_qp
            if ftype is not FrameType.B:
                anchors.append(
                    _Anchor(
                        disp_idx,
                        PaddedReference.from_plane(recon, _REF_PAD),
                        chroma,
                    )
                )
                anchors.sort(key=lambda a: a.display_index)

        if sorted(decoded) != list(range(n_frames)):
            raise ValueError("stream is missing frames")
        frames = []
        for i in range(n_frames):
            chroma = decoded_chroma[i]
            cropped = None
            if chroma is not None:
                cropped = (
                    chroma[0][: chroma_shape[0], : chroma_shape[1]],
                    chroma[1][: chroma_shape[0], : chroma_shape[1]],
                )
            frames.append(Frame(decoded[i][:height, :width], chroma=cropped))
        return DecodeResult(
            video=FrameSequence(frames=frames, fps=fps, name="decoded"),
            frame_types=[types[i] for i in range(n_frames)],
            frame_qps=[qps[i] for i in range(n_frames)],
        )

    def _decode_chroma(
        self,
        reader: BitReader,
        shape: tuple[int, int],
        ftype: FrameType,
        disp_idx: int,
        anchors: list[_Anchor],
        base_qp: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mirror of Encoder._encode_chroma."""
        ref_chroma = None
        if ftype is not FrameType.I:
            past = [
                a for a in anchors
                if a.display_index < disp_idx and a.chroma is not None
            ]
            if past:
                ref_chroma = max(past, key=lambda a: a.display_index).chroma
        planes = []
        for i in range(2):
            prev = ref_chroma[i] if ref_chroma is not None else None
            planes.append(decode_chroma_plane(reader, shape, prev, base_qp))
        return (planes[0], planes[1])

    # ------------------------------------------------------------------
    def _decode_frame(
        self,
        reader: BitReader,
        ftype: FrameType,
        base_qp: int,
        disp_idx: int,
        anchors: list[_Anchor],
        n_mb_y: int,
        n_mb_x: int,
        pad_w: int,
    ) -> np.ndarray:
        recon = np.zeros((n_mb_y * 16, pad_w), dtype=np.uint8)
        past = [a for a in anchors if a.display_index < disp_idx]
        past.sort(key=lambda a: -a.display_index)
        future = [a for a in anchors if a.display_index > disp_idx]
        ref_l1 = min(future, key=lambda a: a.display_index) if future else None
        if not past and anchors:
            past = [anchors[0]]
        mv_grid: list[list[MotionVector | None]] = [
            [None] * n_mb_x for _ in range(n_mb_y)
        ]
        for mb_y in range(n_mb_y):
            for mb_x in range(n_mb_x):
                self._decode_mb(
                    reader, recon, mv_grid, mb_y, mb_x, base_qp, past, ref_l1
                )
        return recon

    def _decode_mb(
        self,
        reader: BitReader,
        recon: np.ndarray,
        mv_grid: list[list[MotionVector | None]],
        mb_y: int,
        mb_x: int,
        base_qp: int,
        past: list[_Anchor],
        ref_l1: _Anchor | None,
    ) -> None:
        y, x = mb_y * 16, mb_x * 16
        mode_id = read_ue(reader)
        pred_mv = self._predict_mv(mv_grid, mb_y, mb_x)

        if mode_id == _SKIP:
            if not past:
                raise ValueError("SKIP macroblock with no reference available")
            fx, fy = pred_mv.full_pel
            pred = past[0].padded.block(y + fy, x + fx).astype(np.float64)
            recon[y : y + 16, x : x + 16] = np.clip(np.round(pred), 0, 255).astype(
                np.uint8
            )
            mv_grid[mb_y][mb_x] = pred_mv
            return

        if mode_id == _INTRA4:
            qp = base_qp + read_se(reader)
            self._decode_intra4(reader, recon, y, x, qp)
            mv_grid[mb_y][mb_x] = None
            return

        mvs: list[MotionVector] = []
        mv1: MotionVector | None = None
        intra_mode = IntraMode.DC
        if mode_id == _INTRA16:
            intra_mode = IntraMode(read_ue(reader))
        elif mode_id == _BI:
            ref0 = read_ue(reader)
            mvs = [
                MotionVector(
                    read_se(reader) + pred_mv.dx, read_se(reader) + pred_mv.dy, ref0
                )
            ]
            mv1 = MotionVector(
                read_se(reader) + pred_mv.dx, read_se(reader) + pred_mv.dy, 0
            )
        elif mode_id in (_INTER16, _INTER8, _INTER4):
            ref = read_ue(reader)
            n_mvs = {_INTER16: 1, _INTER8: 4, _INTER4: 16}[mode_id]
            for _ in range(n_mvs):
                mvs.append(
                    MotionVector(
                        read_se(reader) + pred_mv.dx,
                        read_se(reader) + pred_mv.dy,
                        ref,
                    )
                )
        else:
            raise ValueError(f"unsupported macroblock mode id {mode_id}")

        qp = base_qp + read_se(reader)
        levels = np.stack([decode_block(reader) for _ in range(16)])

        if mode_id == _INTRA16:
            prediction = predict_16x16(recon, y, x, intra_mode).astype(np.float64)
        elif mode_id == _BI:
            assert mv1 is not None and ref_l1 is not None
            if mvs[0].ref >= len(past):
                raise ValueError("BI macroblock references a missing anchor")
            pred0 = fetch_prediction(past[mvs[0].ref].padded, y, x, mvs[0].dx, mvs[0].dy)
            pred1 = fetch_prediction(ref_l1.padded, y, x, mv1.dx, mv1.dy)
            prediction = (pred0 + pred1) / 2.0
        else:
            if mvs[0].ref >= len(past):
                raise ValueError("inter macroblock references a missing anchor")
            ref_plane = past[mvs[0].ref].padded
            if mode_id == _INTER16:
                prediction = fetch_prediction(ref_plane, y, x, mvs[0].dx, mvs[0].dy)
            else:
                size = 8 if mode_id == _INTER8 else 4
                n = 16 // size
                prediction = np.zeros((16, 16), dtype=np.float64)
                for i, mv in enumerate(mvs):
                    py, px = divmod(i, n)
                    fx, fy = mv.full_pel
                    prediction[
                        py * size : (py + 1) * size, px * size : (px + 1) * size
                    ] = ref_plane.block(
                        y + py * size + fy, x + px * size + fx, size
                    ).astype(np.float64)

        residual = unblockify_16x16(inverse_4x4(dequantize(levels, qp)))
        recon[y : y + 16, x : x + 16] = np.clip(
            np.round(prediction + residual), 0, 255
        ).astype(np.uint8)
        mv_grid[mb_y][mb_x] = mvs[0] if mvs else None
        if self.tracer.enabled:
            # Decoding work: entropy parse + inverse transform + MC copy.
            n_tokens = int(np.count_nonzero(levels))
            self.tracer.kernel("entropy_coeff", iters=max(n_tokens, 1))
            self.tracer.kernel("idct4", iters=16)
            self.tracer.kernel("mc_copy", iters=16)

    def _decode_intra4(
        self, reader: BitReader, recon: np.ndarray, y0: int, x0: int, qp: int
    ) -> None:
        """Sequential 4x4 intra decoding (mirrors Encoder._emit_intra4)."""
        for by in range(4):
            for bx in range(4):
                y = y0 + by * 4
                x = x0 + bx * 4
                mode = read_ue(reader)
                levels = decode_block(reader)
                pred = self._intra4_prediction(recon, y, x, mode)
                recon4 = np.clip(
                    np.round(pred + inverse_4x4(dequantize(levels[None], qp))[0]),
                    0,
                    255,
                ).astype(np.uint8)
                recon[y : y + 4, x : x + 4] = recon4

    @staticmethod
    def _intra4_prediction(
        recon: np.ndarray, y: int, x: int, mode: int
    ) -> np.ndarray:
        top = recon[y - 1, x : x + 4].astype(np.float64) if y > 0 else None
        left = recon[y : y + 4, x - 1].astype(np.float64) if x > 0 else None
        if mode == 1 and top is not None:
            return np.tile(top, (4, 1))
        if mode == 2 and left is not None:
            return np.tile(left[:, None], (1, 4))
        if top is not None and left is not None:
            dc = (top.sum() + left.sum()) / 8.0
        elif top is not None:
            dc = top.mean()
        elif left is not None:
            dc = left.mean()
        else:
            dc = 128.0
        return np.full((4, 4), dc)

    @staticmethod
    def _predict_mv(
        mv_grid: list[list[MotionVector | None]], mb_y: int, mb_x: int
    ) -> MotionVector:
        neighbors: list[MotionVector] = []
        if mb_x > 0 and mv_grid[mb_y][mb_x - 1] is not None:
            neighbors.append(mv_grid[mb_y][mb_x - 1])  # type: ignore[arg-type]
        if mb_y > 0 and mv_grid[mb_y - 1][mb_x] is not None:
            neighbors.append(mv_grid[mb_y - 1][mb_x])  # type: ignore[arg-type]
        if (
            mb_y > 0
            and mb_x + 1 < len(mv_grid[0])
            and mv_grid[mb_y - 1][mb_x + 1] is not None
        ):
            neighbors.append(mv_grid[mb_y - 1][mb_x + 1])  # type: ignore[arg-type]
        if not neighbors:
            return MotionVector(0, 0, 0)
        dx = int(np.median([m.dx for m in neighbors]))
        dy = int(np.median([m.dy for m in neighbors]))
        return MotionVector(dx, dy, 0)


def decode(bitstream: bytes, *, tracer: Tracer | None = None) -> DecodeResult:
    """Convenience wrapper around :class:`Decoder`."""
    return Decoder(tracer=tracer).decode(bitstream)
