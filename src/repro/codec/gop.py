"""GOP structure: frame-type decision, scene-cut detection, B-adapt.

Decides, for each display-order frame, whether it codes as I, P, or B
(paper §II-A/II-B), honoring the Table II options:

- ``keyint`` — maximum I-frame interval,
- ``scenecut`` — threshold for inserting an I-frame at a content cut,
- ``bframes`` — maximum consecutive B pictures,
- ``b_adapt`` — 0 fixed pattern, 1 fast decision, 2 lookahead (trellis-ish).

Costs are estimated with cheap downscaled SAD probes, mirroring x264's
lookahead which also works on half-resolution frames.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.options import EncoderOptions
from repro.codec.types import FrameType
from repro.video.frame import FrameSequence

__all__ = ["GopPlan", "plan_gop", "scene_change_score"]


@dataclass(frozen=True)
class GopPlan:
    """Frame types in display order plus the decode (coding) order."""

    frame_types: tuple[FrameType, ...]  # display order
    decode_order: tuple[int, ...]  # display indices in decode order
    scene_cuts: tuple[int, ...]  # display indices that triggered a cut

    def __len__(self) -> int:
        return len(self.frame_types)


def _probe(frame_luma: np.ndarray) -> np.ndarray:
    """Half-resolution probe plane used for cheap cost estimates."""
    h = (frame_luma.shape[0] // 2) * 2
    w = (frame_luma.shape[1] // 2) * 2
    a = frame_luma[:h, :w].astype(np.float64)
    return (a[0::2, 0::2] + a[0::2, 1::2] + a[1::2, 0::2] + a[1::2, 1::2]) / 4.0


def _intra_cost(probe: np.ndarray) -> float:
    """Spatial-gradient proxy for intra coding cost.

    The 0.7 factor reflects that intra prediction removes part of the raw
    gradient energy (DC/directional modes); it is calibrated so that
    smoothly-moving synthetic content scores well below the default
    scene-cut threshold while unrelated frames score above it.
    """
    gy = np.abs(np.diff(probe, axis=0)).sum()
    gx = np.abs(np.diff(probe, axis=1)).sum()
    return 0.7 * float(gx + gy) + 1.0


_PROBE_BLOCK = 4
_PROBE_SHIFTS = tuple(
    (dy, dx) for dy in (-2, -1, 0, 1, 2) for dx in (-2, -1, 0, 1, 2)
)


def _inter_cost(probe: np.ndarray, ref_probe: np.ndarray) -> float:
    """Motion-compensated SAD proxy for inter coding cost.

    A zero-MV difference wildly overestimates inter cost on moving
    content; like x264's lookahead we run a coarse per-block motion
    search: each 4x4 probe block keeps its best SAD over +/-2-pixel
    translations of the reference. Continuous motion compensates away;
    scene cuts do not.
    """
    h = (probe.shape[0] // _PROBE_BLOCK) * _PROBE_BLOCK
    w = (probe.shape[1] // _PROBE_BLOCK) * _PROBE_BLOCK
    cur = probe[:h, :w]
    nby, nbx = h // _PROBE_BLOCK, w // _PROBE_BLOCK
    best = np.full((nby, nbx), np.inf)
    for dy, dx in _PROBE_SHIFTS:
        shifted = np.roll(ref_probe, (dy, dx), axis=(0, 1))[:h, :w]
        diff = np.abs(cur - shifted)
        block_sums = diff.reshape(
            nby, _PROBE_BLOCK, nbx, _PROBE_BLOCK
        ).sum(axis=(1, 3))
        np.minimum(best, block_sums, out=best)
    return float(best.sum()) + 1.0


def scene_change_score(cur: np.ndarray, prev: np.ndarray) -> float:
    """How expensive inter coding is relative to intra: ``pcost / icost``.

    x264 declares a scene cut when the inter cost reaches a fraction of
    the intra cost: cut iff ``pcost >= (1 - scenecut/100) * icost``, i.e.
    iff this score exceeds ``(100 - scenecut) / 100``. Identical frames
    score ~0; unrelated frames score above 1 (predicting from the previous
    frame is worse than coding from scratch).
    """
    pc = _probe(cur)
    pp = _probe(prev)
    icost = _intra_cost(pc)
    pcost = _inter_cost(pc, pp)
    return float(pcost / icost)


def _decode_order(frame_types: list[FrameType]) -> list[int]:
    """Decode order: each anchor (I/P) precedes the Bs that reference it."""
    order: list[int] = []
    pending_b: list[int] = []
    for i, ftype in enumerate(frame_types):
        if ftype is FrameType.B:
            pending_b.append(i)
        else:
            order.append(i)
            order.extend(pending_b)
            pending_b.clear()
    # Trailing Bs with no future anchor are coded last (decoder treats the
    # previous anchor as both references).
    order.extend(pending_b)
    return order


def plan_gop(video: FrameSequence, options: EncoderOptions) -> GopPlan:
    """Assign a frame type to every frame of ``video``.

    The first frame is always I. Scene cuts force I-frames. Between
    anchors, up to ``bframes`` consecutive B pictures are placed according
    to ``b_adapt``.
    """
    n = len(video)
    probes = [_probe(f.luma) for f in video]
    icosts = [_intra_cost(p) for p in probes]

    # Pass 1: place I frames (keyint + scenecut).
    is_idr = [False] * n
    is_idr[0] = True
    cut_threshold = (100 - options.scenecut) / 100.0
    scene_cuts: list[int] = []
    since_idr = 0
    for i in range(1, n):
        since_idr += 1
        cut = False
        if options.scenecut > 0:
            score = scene_change_score(video[i].luma, video[i - 1].luma)
            cut = score >= cut_threshold
        if cut or since_idr >= options.keyint:
            is_idr[i] = True
            since_idr = 0
            if cut:
                scene_cuts.append(i)

    # Pass 2: choose P/B between anchors.
    frame_types: list[FrameType] = [FrameType.P] * n
    for i in range(n):
        if is_idr[i]:
            frame_types[i] = FrameType.I

    if options.bframes > 0:
        i = 0
        while i < n:
            if is_idr[i]:
                i += 1
                continue
            # Collect a run of non-IDR frames starting at i.
            run_start = i
            while i < n and not is_idr[i]:
                i += 1
            run_end = i  # exclusive
            _assign_b_frames(
                frame_types, probes, icosts, run_start, run_end, options
            )

    return GopPlan(
        frame_types=tuple(frame_types),
        decode_order=tuple(_decode_order(frame_types)),
        scene_cuts=tuple(scene_cuts),
    )


def _assign_b_frames(
    frame_types: list[FrameType],
    probes: list[np.ndarray],
    icosts: list[float],
    start: int,
    end: int,
    options: EncoderOptions,
) -> None:
    """Mark frames in [start, end) as B according to b_adapt policy.

    The last frame of each mini-group stays P (the forward anchor).
    """
    max_b = options.bframes
    i = start
    while i < end:
        group_end = min(i + max_b + 1, end)
        if options.b_adapt == 0:
            # Fixed pattern: all but the last frame of the group are B.
            n_b = group_end - i - 1
        elif options.b_adapt == 1:
            # Fast: extend the B run while consecutive frames are similar.
            n_b = 0
            for j in range(i, group_end - 1):
                sim = _inter_cost(probes[j], probes[j - 1]) / icosts[j]
                if sim < 0.6:  # cheap to bi-predict
                    n_b += 1
                else:
                    break
        else:
            # Lookahead (b_adapt=2): pick the B-run length minimizing the
            # estimated *per-frame* group cost. B frames cost ~55% of
            # their inter cost (bi-prediction), the anchor P pays for a
            # longer prediction distance; amortizing the anchor over the
            # group makes longer B runs attractive exactly when the
            # content is temporally stable.
            best_cost = np.inf
            n_b = 0
            for cand in range(0, group_end - i):
                anchor = i + cand
                anchor_cost = _inter_cost(probes[anchor], probes[i - 1])
                b_cost = sum(
                    0.55 * _inter_cost(probes[j], probes[j - 1])
                    for j in range(i, anchor)
                )
                cost = (anchor_cost + b_cost) / (cand + 1)
                if cost < best_cost:
                    best_cost = cost
                    n_b = cand
        for j in range(i, min(i + n_b, group_end - 1)):
            frame_types[j] = FrameType.B
        i += max(1, n_b + 1)
