"""Entropy coding: exp-Golomb bit I/O and run-level coefficient coding.

This is a *real, decodable* entropy layer: the encoder writes every
macroblock's syntax elements (mode, MVs, QP delta, coefficients) through
:class:`BitWriter`, and :class:`BitReader` parses them back bit-exactly.
Coefficients use zigzag run-level coding with signed exp-Golomb codes — a
genuine (H.263-era) scheme that preserves the property the paper's
characterization depends on: the bit cost and the branchiness of coding
scale with the number and magnitude of surviving coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.codec.transform import ZIGZAG_4X4

__all__ = [
    "BitWriter",
    "BitReader",
    "write_ue",
    "read_ue",
    "write_se",
    "read_se",
    "ue_bits",
    "se_bits",
    "encode_block",
    "decode_block",
    "block_bits",
]


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._cur = 0
        self._nbits = 0
        self.bit_count = 0

    def write_bit(self, bit: int) -> None:
        self._cur = (self._cur << 1) | (bit & 1)
        self._nbits += 1
        self.bit_count += 1
        if self._nbits == 8:
            self._bytes.append(self._cur)
            self._cur = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        if width < 0:
            raise ValueError("width must be >= 0")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def getvalue(self) -> bytes:
        """Byte-aligned contents (zero padded in the final byte)."""
        out = bytearray(self._bytes)
        if self._nbits:
            out.append(self._cur << (8 - self._nbits))
        return bytes(out)


class BitReader:
    """MSB-first reader over bytes produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_read(self) -> int:
        return self._pos

    def read_bit(self) -> int:
        byte_i, bit_i = divmod(self._pos, 8)
        if byte_i >= len(self._data):
            raise EOFError("bitstream exhausted")
        self._pos += 1
        return (self._data[byte_i] >> (7 - bit_i)) & 1

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value


def write_ue(writer: BitWriter, value: int) -> None:
    """Unsigned exp-Golomb code."""
    if value < 0:
        raise ValueError(f"ue() requires value >= 0, got {value}")
    code = value + 1
    width = code.bit_length()
    writer.write_bits(0, width - 1)
    writer.write_bits(code, width)


def read_ue(reader: BitReader) -> int:
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
        if zeros > 64:
            raise ValueError("malformed exp-Golomb code (leading zeros > 64)")
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read_bit()
    return value - 1


def write_se(writer: BitWriter, value: int) -> None:
    """Signed exp-Golomb code (0, 1, -1, 2, -2, ... mapping)."""
    write_ue(writer, (2 * value - 1) if value > 0 else (-2 * value))


def read_se(reader: BitReader) -> int:
    code = read_ue(reader)
    magnitude = (code + 1) // 2
    return magnitude if code % 2 == 1 else -magnitude


def ue_bits(value: int) -> int:
    """Bit cost of ue(value) without writing."""
    if value < 0:
        raise ValueError("ue cost requires value >= 0")
    return 2 * (value + 1).bit_length() - 1


def se_bits(value: int) -> int:
    """Bit cost of se(value) without writing."""
    return ue_bits((2 * value - 1) if value > 0 else (-2 * value))


def _zigzag(block: np.ndarray) -> np.ndarray:
    return block[ZIGZAG_4X4]


def _unzigzag(scan: np.ndarray) -> np.ndarray:
    block = np.zeros((4, 4), dtype=np.int32)
    block[ZIGZAG_4X4] = scan
    return block


def encode_block(writer: BitWriter, block: np.ndarray) -> int:
    """Run-level encode one 4x4 integer block; returns bits written.

    Syntax: ue(n_nonzero), then per nonzero coefficient in zigzag order
    ue(zero run before it) and se(level).
    """
    if block.shape != (4, 4):
        raise ValueError(f"expected 4x4 block, got {block.shape}")
    start = writer.bit_count
    scan = _zigzag(np.asarray(block, dtype=np.int64))
    nz_positions = np.nonzero(scan)[0]
    write_ue(writer, len(nz_positions))
    prev = -1
    for pos in nz_positions:
        write_ue(writer, int(pos - prev - 1))  # zero run
        write_se(writer, int(scan[pos]))
        prev = int(pos)
    return writer.bit_count - start


def decode_block(reader: BitReader) -> np.ndarray:
    """Inverse of :func:`encode_block`."""
    n_nonzero = read_ue(reader)
    if n_nonzero > 16:
        raise ValueError(f"corrupt block: {n_nonzero} nonzero coefficients")
    scan = np.zeros(16, dtype=np.int32)
    pos = -1
    for _ in range(n_nonzero):
        run = read_ue(reader)
        pos += run + 1
        if pos >= 16:
            raise ValueError("corrupt block: zigzag position overflow")
        scan[pos] = read_se(reader)
    return _unzigzag(scan)


def block_bits(block: np.ndarray) -> int:
    """Exact bit cost of :func:`encode_block` without materializing bits.

    Used by the mode decision's rate estimator (the "CAVLC-style cost
    model"): cheap to evaluate and exactly equal to the real cost.
    """
    scan = _zigzag(np.asarray(block, dtype=np.int64))
    nz_positions = np.nonzero(scan)[0]
    bits = ue_bits(len(nz_positions))
    prev = -1
    for pos in nz_positions:
        bits += ue_bits(int(pos - prev - 1))
        bits += se_bits(int(scan[pos]))
        prev = int(pos)
    return bits
