"""Entropy coding: exp-Golomb bit I/O and run-level coefficient coding.

This is a *real, decodable* entropy layer: the encoder writes every
macroblock's syntax elements (mode, MVs, QP delta, coefficients) through
:class:`BitWriter`, and :class:`BitReader` parses them back bit-exactly.
Coefficients use zigzag run-level coding with signed exp-Golomb codes — a
genuine (H.263-era) scheme that preserves the property the paper's
characterization depends on: the bit cost and the branchiness of coding
scale with the number and magnitude of surviving coefficients.

Bit emission is backend-dispatched (see :mod:`repro.codec.kernels`): the
``reference`` backend pushes one bit at a time through
:meth:`BitWriter.write_bit`, while the ``vectorized`` backend appends
whole codes with big-integer shifts and byte-chunked extends — the buffer
contents, partial-byte state, and ``bit_count`` stay identical by
construction (MSB-first in both).
"""

from __future__ import annotations

import numpy as np

from repro.codec import kernels
from repro.codec.transform import ZIGZAG_4X4

__all__ = [
    "BitWriter",
    "BitReader",
    "write_ue",
    "read_ue",
    "write_se",
    "read_se",
    "ue_bits",
    "se_bits",
    "encode_block",
    "encode_blocks",
    "decode_block",
    "block_bits",
]


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._cur = 0
        self._nbits = 0
        self.bit_count = 0

    def write_bit(self, bit: int) -> None:
        self._cur = (self._cur << 1) | (bit & 1)
        self._nbits += 1
        self.bit_count += 1
        if self._nbits == 8:
            self._bytes.append(self._cur)
            self._cur = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        if width < 0:
            raise ValueError("width must be >= 0")
        if kernels.is_vectorized():
            self.append_bits(value, width)
            return
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def append_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` MSB-first in one operation.

        Equivalent to ``width`` :meth:`write_bit` calls: the byte buffer,
        pending partial byte, and ``bit_count`` end up in the same state.
        """
        if width < 0:
            raise ValueError("width must be >= 0")
        if width == 0:
            return
        acc = (self._cur << width) | (value & ((1 << width) - 1))
        nbits = self._nbits + width
        self.bit_count += width
        nbytes, rem = divmod(nbits, 8)
        if nbytes:
            self._bytes += (acc >> rem).to_bytes(nbytes, "big")
        self._cur = acc & ((1 << rem) - 1)
        self._nbits = rem

    def getvalue(self) -> bytes:
        """Byte-aligned contents (zero padded in the final byte)."""
        out = bytearray(self._bytes)
        if self._nbits:
            out.append(self._cur << (8 - self._nbits))
        return bytes(out)


class BitReader:
    """MSB-first reader over bytes produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_read(self) -> int:
        return self._pos

    def read_bit(self) -> int:
        byte_i, bit_i = divmod(self._pos, 8)
        if byte_i >= len(self._data):
            raise EOFError("bitstream exhausted")
        self._pos += 1
        return (self._data[byte_i] >> (7 - bit_i)) & 1

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value


def write_ue(writer: BitWriter, value: int) -> None:
    """Unsigned exp-Golomb code."""
    if value < 0:
        raise ValueError(f"ue() requires value >= 0, got {value}")
    code = value + 1
    width = code.bit_length()
    if kernels.is_vectorized():
        # Prefix zeros + code collapse into one (2*width-1)-bit append:
        # the top width-1 bits of the widened code are exactly the zeros.
        writer.append_bits(code, 2 * width - 1)
        return
    writer.write_bits(0, width - 1)
    writer.write_bits(code, width)


def read_ue(reader: BitReader) -> int:
    """Decode one unsigned Exp-Golomb code (inverse of :func:`write_ue`)."""
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
        if zeros > 64:
            raise ValueError("malformed exp-Golomb code (leading zeros > 64)")
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read_bit()
    return value - 1


def write_se(writer: BitWriter, value: int) -> None:
    """Signed exp-Golomb code (0, 1, -1, 2, -2, ... mapping)."""
    write_ue(writer, (2 * value - 1) if value > 0 else (-2 * value))


def read_se(reader: BitReader) -> int:
    """Decode one signed Exp-Golomb code (inverse of :func:`write_se`)."""
    code = read_ue(reader)
    magnitude = (code + 1) // 2
    return magnitude if code % 2 == 1 else -magnitude


def ue_bits(value: int) -> int:
    """Bit cost of ue(value) without writing."""
    if value < 0:
        raise ValueError("ue cost requires value >= 0")
    return 2 * (value + 1).bit_length() - 1


def se_bits(value: int) -> int:
    """Bit cost of se(value) without writing."""
    return ue_bits((2 * value - 1) if value > 0 else (-2 * value))


def _zigzag(block: np.ndarray) -> np.ndarray:
    return block[ZIGZAG_4X4]


def _unzigzag(scan: np.ndarray) -> np.ndarray:
    block = np.zeros((4, 4), dtype=np.int32)
    block[ZIGZAG_4X4] = scan
    return block


def encode_block(writer: BitWriter, block: np.ndarray) -> int:
    """Run-level encode one 4x4 integer block; returns bits written.

    Syntax: ue(n_nonzero), then per nonzero coefficient in zigzag order
    ue(zero run before it) and se(level).
    """
    if block.shape != (4, 4):
        raise ValueError(f"expected 4x4 block, got {block.shape}")
    start = writer.bit_count
    scan = _zigzag(np.asarray(block, dtype=np.int64))
    nz_positions = np.nonzero(scan)[0]
    if kernels.is_vectorized():
        # Accumulate the whole block's codes into one big-int append.
        # Each ue code is its widened codeword (prefix zeros included), so
        # concatenating codewords equals the bit-at-a-time emission.
        code = len(nz_positions) + 1
        acc = code
        nbits = 2 * code.bit_length() - 1
        prev = -1
        for pos in nz_positions:
            p = int(pos)
            code = p - prev  # zero run + 1
            w = 2 * code.bit_length() - 1
            acc = (acc << w) | code
            nbits += w
            level = int(scan[p])
            code = (2 * level) if level > 0 else (1 - 2 * level)
            w = 2 * code.bit_length() - 1
            acc = (acc << w) | code
            nbits += w
            prev = p
        writer.append_bits(acc, nbits)
        return writer.bit_count - start
    write_ue(writer, len(nz_positions))
    prev = -1
    for pos in nz_positions:
        write_ue(writer, int(pos - prev - 1))  # zero run
        write_se(writer, int(scan[pos]))
        prev = int(pos)
    return writer.bit_count - start


def encode_blocks(writer: BitWriter, blocks: np.ndarray) -> list[int]:
    """Run-level encode a batch of 4x4 blocks; returns per-block bits.

    Emits exactly the same bitstream as calling :func:`encode_block` on
    each block in order; the vectorized backend hoists the zigzag gather
    over the whole ``(n, 4, 4)`` batch and merges each block's codes into
    one bulk append.
    """
    arr = np.asarray(blocks, dtype=np.int64)
    if arr.ndim != 3 or arr.shape[-2:] != (4, 4):
        raise ValueError(f"expected (n, 4, 4) blocks, got {arr.shape}")
    if not kernels.is_vectorized():
        return [encode_block(writer, b) for b in arr]
    override = kernels.impl("entropy.encode_blocks")
    if override is not None:
        return override(writer, arr)
    scans = arr[:, ZIGZAG_4X4[0], ZIGZAG_4X4[1]]  # (n, 16)
    out: list[int] = []
    for scan in scans:
        start = writer.bit_count
        nz_positions = np.nonzero(scan)[0]
        code = len(nz_positions) + 1
        acc = code
        nbits = 2 * code.bit_length() - 1
        prev = -1
        for pos in nz_positions:
            p = int(pos)
            code = p - prev
            w = 2 * code.bit_length() - 1
            acc = (acc << w) | code
            nbits += w
            level = int(scan[p])
            code = (2 * level) if level > 0 else (1 - 2 * level)
            w = 2 * code.bit_length() - 1
            acc = (acc << w) | code
            nbits += w
            prev = p
        writer.append_bits(acc, nbits)
        out.append(writer.bit_count - start)
    return out


def decode_block(reader: BitReader) -> np.ndarray:
    """Inverse of :func:`encode_block`."""
    n_nonzero = read_ue(reader)
    if n_nonzero > 16:
        raise ValueError(f"corrupt block: {n_nonzero} nonzero coefficients")
    scan = np.zeros(16, dtype=np.int32)
    pos = -1
    for _ in range(n_nonzero):
        run = read_ue(reader)
        pos += run + 1
        if pos >= 16:
            raise ValueError("corrupt block: zigzag position overflow")
        scan[pos] = read_se(reader)
    return _unzigzag(scan)


def block_bits(block: np.ndarray) -> int:
    """Exact bit cost of :func:`encode_block` without materializing bits.

    Used by the mode decision's rate estimator (the "CAVLC-style cost
    model"): cheap to evaluate and exactly equal to the real cost.
    """
    scan = _zigzag(np.asarray(block, dtype=np.int64))
    nz_positions = np.nonzero(scan)[0]
    bits = ue_bits(len(nz_positions))
    prev = -1
    for pos in nz_positions:
        bits += ue_bits(int(pos - prev - 1))
        bits += se_bits(int(scan[pos]))
        prev = int(pos)
    return bits
