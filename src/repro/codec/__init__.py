"""A from-scratch H.264-style transcoding codec (the FFmpeg/x264 substitute).

This package implements the encoder structure the paper characterizes:
GOP and frame-type decision (scenecut, b-adapt, bframes), macroblock
partitioning, intra prediction, motion estimation with the x264 search
patterns (dia/hex/umh/esa/tesa), integer transform, quantization with
three trellis levels, six rate-control modes, an exp-Golomb entropy coder
with a real decodable bitstream, an in-loop deblocking filter, and the ten
x264 presets with the exact option values from the paper's Table II.
"""

from repro.codec.decoder import Decoder, decode
from repro.codec.encoder import EncodeResult, Encoder, encode
from repro.codec.options import EncoderOptions
from repro.codec.presets import PRESET_NAMES, PRESETS, preset_options
from repro.codec.types import FrameType, MBMode

__all__ = [
    "Encoder",
    "EncodeResult",
    "encode",
    "Decoder",
    "decode",
    "EncoderOptions",
    "PRESETS",
    "PRESET_NAMES",
    "preset_options",
    "FrameType",
    "MBMode",
]
