"""Typed records shared by every blessed ``repro.api`` workflow.

Three dataclasses form the contract between callers, the CLI, and the
long-lived transcoding service:

- :class:`TranscodeRequest` — what to transcode (clip + preset/crf/refs)
  and how urgently (priority, optional deadline);
- :class:`TranscodeResult` — what came out: the Fig. 2 speed / quality /
  size triangle, plus simulated cycles and the placed configuration when
  the request went through a worker fleet;
- :class:`JobStatus` — one job's lifecycle snapshot inside the service
  (``queued`` → ``running`` → ``done`` | ``failed``).

All three round-trip through plain-JSON payloads (``to_payload`` /
``from_payload``) so the CLI spool file, the service checkpoint, and the
``jobs.json`` status artifact share one serialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.codec.options import EncoderOptions
from repro.codec.presets import PRESET_NAMES, preset_options

__all__ = [
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_STATES",
    "JobStatus",
    "TranscodeRequest",
    "TranscodeResult",
]

#: Job lifecycle states, in order of progression.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)


@dataclass(frozen=True)
class TranscodeRequest:
    """One transcoding job submission.

    ``clip`` is a vbench short name (paper Table I); ``preset`` / ``crf``
    / ``refs`` are the x264-style knobs of Table II (``refs=None`` keeps
    the preset's own Table II value). ``priority`` orders dispatch
    (higher first, FIFO within a priority class); ``deadline_ms`` is an
    optional soft deadline carried into status artifacts.
    """

    clip: str
    preset: str = "medium"
    crf: int = 23
    refs: int | None = None
    priority: int = 0
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if not self.clip:
            raise ValueError("request needs a clip name")
        if self.preset not in PRESET_NAMES:
            raise ValueError(
                f"unknown preset {self.preset!r}; "
                f"choose from {', '.join(PRESET_NAMES)}"
            )
        if not 0 <= self.crf <= 51:
            raise ValueError(f"crf must be in [0, 51], got {self.crf}")
        if self.refs is not None and self.refs < 1:
            raise ValueError(f"refs must be >= 1, got {self.refs}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when given")

    def options(self) -> EncoderOptions:
        """The encoder options this request resolves to."""
        return preset_options(self.preset, crf=self.crf, refs=self.refs)

    def content_key(self) -> tuple[object, ...]:
        """Hashable identity of the *work* (excludes priority/deadline,
        which affect ordering but not the computation)."""
        return (self.clip, self.preset, self.crf, self.refs)

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form (spool lines, checkpoints, artifacts)."""
        return {
            "clip": self.clip,
            "preset": self.preset,
            "crf": self.crf,
            "refs": self.refs,
            "priority": self.priority,
            "deadline_ms": self.deadline_ms,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TranscodeRequest":
        """Inverse of :meth:`to_payload`; unknown keys are rejected."""
        known = {
            "clip", "preset", "crf", "refs", "priority", "deadline_ms",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown TranscodeRequest fields: {sorted(unknown)}"
            )
        if "clip" not in payload:
            raise ValueError("TranscodeRequest payload needs a 'clip'")
        kwargs = dict(payload)
        clip = kwargs.pop("clip")
        return cls(clip=str(clip), **kwargs)


@dataclass(frozen=True)
class TranscodeResult:
    """What one transcode produced: the speed / quality / size triangle,
    plus placement facts when the job ran on a simulated worker.

    ``cycles`` / ``config`` / ``baseline_cycles`` are ``None`` for plain
    :func:`repro.api.encode` calls (no simulation); the service fills
    them from the worker's microarchitecture simulation.
    """

    clip: str
    preset: str
    crf: int
    refs: int | None
    psnr_db: float
    bitrate_kbps: float
    encode_seconds: float
    cycles: float | None = None
    config: str | None = None
    baseline_cycles: float | None = None

    @property
    def speedup_pct(self) -> float | None:
        """Speedup over the baseline configuration in %, when simulated."""
        if self.cycles is None or self.baseline_cycles is None:
            return None
        return (self.baseline_cycles / self.cycles - 1.0) * 100.0

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form for checkpoints and status artifacts."""
        return {
            "clip": self.clip,
            "preset": self.preset,
            "crf": self.crf,
            "refs": self.refs,
            "psnr_db": self.psnr_db,
            "bitrate_kbps": self.bitrate_kbps,
            "encode_seconds": self.encode_seconds,
            "cycles": self.cycles,
            "config": self.config,
            "baseline_cycles": self.baseline_cycles,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TranscodeResult":
        """Inverse of :meth:`to_payload`."""
        return cls(**payload)


@dataclass
class JobStatus:
    """A snapshot of one service job's lifecycle."""

    job_id: int
    state: str
    clip: str
    preset: str
    crf: int
    refs: int | None
    priority: int = 0
    attempts: int = 0
    worker: str | None = None
    error: str | None = None
    result: TranscodeResult | None = field(default=None, repr=False)
    trace_id: str | None = None
    #: Per-stage wall-clock seconds (queue_wait_s, placement_s,
    #: encode_s, retry_overhead_s, e2e_s), filled as the job progresses.
    timings: dict[str, float] = field(default_factory=dict)
    #: Dollars billed for this job's worker occupancy (encode plus any
    #: retry/crash time, at the executing workers' hourly rates).
    cost_usd: float = 0.0

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {self.state!r}; "
                f"expected one of {', '.join(JOB_STATES)}"
            )

    @property
    def terminal(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        return self.state in (JOB_DONE, JOB_FAILED)

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form for the ``jobs.json`` status artifact."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "clip": self.clip,
            "preset": self.preset,
            "crf": self.crf,
            "refs": self.refs,
            "priority": self.priority,
            "attempts": self.attempts,
            "worker": self.worker,
            "error": self.error,
            "result": None if self.result is None else self.result.to_payload(),
            "trace_id": self.trace_id,
            "timings": dict(self.timings),
            "cost_usd": self.cost_usd,
        }
