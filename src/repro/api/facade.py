"""The seven blessed entry points: encode, profile, sweep, schedule,
serve, loadtest, fleet_compare.

One function per workflow, all consuming/producing the typed records in
:mod:`repro.api.types`. The CLI, the experiments, and the service layer
route through these — per-module ``run()`` functions and the historical
``repro.transcode`` / ``repro.profile_transcode`` aliases remain only as
deprecated shims.

- :func:`encode` — one transcode (the Fig. 2 triangle);
- :func:`profile` — one perf-stat-style profiled transcode;
- :func:`sweep` — any paper table/figure by experiment id;
- :func:`schedule` — the batch scheduler case study (Fig. 9);
- :func:`serve` — a synchronous pass of the long-lived job service;
- :func:`loadtest` — an open-loop sustained-traffic run against the
  service on a virtual clock;
- :func:`fleet_compare` — one workload across heterogeneous
  instance-typed fleets, tabulating throughput/$, p99 e2e, and cost per
  completed job (smart vs. the random control).

``sweep``, ``serve``, ``loadtest``, and ``fleet_compare`` accept
``telemetry_dir`` and then export ``run.json`` / ``events.jsonl`` /
``trace.json`` artifacts around the run, exactly like the CLI's
``--telemetry`` flag.
"""

from __future__ import annotations

import sys
import time
from contextlib import nullcontext
from pathlib import Path

from repro.api.settings import Settings
from repro.api.types import TranscodeRequest, TranscodeResult
from repro.loadgen.driver import LoadtestReport, LoadtestSpec, run_loadtest
from repro.profiling.perf import ProfileResult, profile_transcode
from repro.scheduling.casestudy import CaseStudyResult, run_case_study
from repro.scheduling.task import TABLE_III_TASKS, TranscodeTask
from repro.service.service import (
    ServiceConfig,
    ServiceReport,
    run_service,
)
from repro.video.vbench import load_video

__all__ = [
    "backends",
    "bench_matrix",
    "encode",
    "fleet_compare",
    "loadtest",
    "profile",
    "render_experiment",
    "schedule",
    "serve",
    "sweep",
]


def backends():
    """Every registered kernel backend, in registration order.

    Returns the :class:`~repro.codec.kernels.Backend` records themselves:
    each carries its capability set, what it inherits from (``base``),
    and — for optional backends whose dependency is missing, like
    ``numba`` without numba installed — an ``unavailable_reason``
    explaining why selecting it will fall back. Pick a backend with
    ``Settings(kernels=...)`` or inspect availability programmatically::

        >>> [b.name for b in api.backends() if b.available]
        ['reference', 'vectorized', 'batched']
    """
    from repro.codec import kernels as _kernels

    return _kernels.all_backends()


def _as_request(
    request: TranscodeRequest | str, **overrides: object
) -> TranscodeRequest:
    if isinstance(request, TranscodeRequest):
        if overrides:
            raise ValueError(
                "pass either a TranscodeRequest or keyword overrides, not both"
            )
        return request
    return TranscodeRequest(clip=request, **overrides)  # type: ignore[arg-type]


def encode(
    request: TranscodeRequest | str,
    *,
    width: int | None = None,
    height: int | None = None,
    n_frames: int | None = None,
    **overrides: object,
) -> TranscodeResult:
    """Transcode one clip and return the speed/quality/size triangle.

    ``request`` is a :class:`~repro.api.types.TranscodeRequest` or a
    vbench clip name (with ``preset`` / ``crf`` / ``refs`` keyword
    overrides). ``width`` / ``height`` / ``n_frames`` size the proxy
    clip. No simulation runs: ``cycles`` is ``None`` in the result.
    """
    from repro.ffmpeg.transcode import transcode as _transcode

    req = _as_request(request, **overrides)
    video = load_video(req.clip, width=width, height=height, n_frames=n_frames)
    out = _transcode(video, options=req.options())
    return TranscodeResult(
        clip=req.clip,
        preset=req.preset,
        crf=req.crf,
        refs=req.refs,
        psnr_db=out.quality_psnr_db,
        bitrate_kbps=out.size_bitrate_kbps,
        encode_seconds=out.encode.encode_seconds,
    )


def profile(
    request: TranscodeRequest | str,
    *,
    width: int | None = None,
    height: int | None = None,
    n_frames: int | None = None,
    config=None,
    data_capacity_scale: float | None = None,
    **overrides: object,
) -> ProfileResult:
    """Profile one transcode perf-stat style (encode under a tracer,
    simulate, return the paper's counter set). Accepts the same request
    forms as :func:`encode`; ``config`` picks the simulated µarch
    (default: the Table IV baseline)."""
    req = _as_request(request, **overrides)
    video = load_video(req.clip, width=width, height=height, n_frames=n_frames)
    return profile_transcode(
        video,
        req.options(),
        config=config,
        data_capacity_scale=data_capacity_scale,
    )


# ----------------------------------------------------------------------
# Experiments.
# ----------------------------------------------------------------------

def render_experiment(exp_id: str, scale) -> str:
    """Run one registered experiment and return its rendered text.

    Imports are local so cheap experiments do not pay for numpy-heavy
    modules they do not use; ``KeyError`` for unknown ids.
    """
    if exp_id == "tab1":
        from repro.experiments.tables import tab1

        return tab1(scale).render()
    if exp_id == "tab2":
        from repro.experiments.tables import tab2

        return tab2()
    if exp_id == "tab3":
        from repro.experiments.tables import tab3

        return tab3()
    if exp_id == "tab4":
        from repro.experiments.tables import tab4

        return tab4()
    if exp_id == "fig3":
        from repro.experiments import fig3_heatmaps

        return fig3_heatmaps.run(scale).render()
    if exp_id == "fig4":
        from repro.experiments import fig4_projections

        return fig4_projections.run(scale).render()
    if exp_id == "fig5":
        from repro.experiments import fig5_inefficiency

        return fig5_inefficiency.run(scale).render()
    if exp_id == "fig6":
        from repro.experiments import fig6_presets

        return fig6_presets.run(scale).render()
    if exp_id == "fig7":
        from repro.experiments import fig7_videos

        return fig7_videos.run(scale).render()
    if exp_id == "fig8":
        from repro.experiments import fig8_compiler

        return fig8_compiler.run(scale).render()
    if exp_id == "fig9":
        from repro.experiments import fig9_scheduler

        return fig9_scheduler.run(scale).render()
    if exp_id == "roofline":
        from repro.experiments import roofline_sweep

        return roofline_sweep.run(scale).render()
    raise KeyError(exp_id)


def _resolve_scale(scale):
    from repro.experiments.runner import SCALES

    if isinstance(scale, str):
        return SCALES[scale]
    return scale


def sweep(
    experiment: str,
    scale="quick",
    *,
    telemetry_dir: str | Path | None = None,
    settings: Settings | None = None,
) -> str:
    """Run one paper experiment end to end and return its rendered text.

    ``scale`` is a name (``quick`` / ``medium`` / ``full``) or an
    :class:`~repro.experiments.runner.ExperimentScale`. With
    ``telemetry_dir`` the run executes under a telemetry session and
    exports ``run.json`` / ``events.jsonl`` / ``trace.json`` there. A
    ``settings`` object, when given, is applied first (see
    :class:`repro.api.Settings` for the precedence rules).

    A sweep whose cells exhaust their retry budget raises
    :class:`~repro.experiments.runner.SweepFailure` after recording a
    ``status: "partial"`` artifact — the caller decides how to degrade.
    """
    if settings is not None:
        settings.apply()
    resolved = _resolve_scale(scale)
    if telemetry_dir is None:
        return render_experiment(experiment, resolved)

    from repro.experiments.runner import SweepFailure
    from repro.obs import export_session, span, telemetry_session

    t0 = time.perf_counter()
    status = "ok"
    failures: list[dict[str, object]] | None = None
    with telemetry_session() as tel:
        tel.meta["argv_experiment"] = experiment
        try:
            with span("experiment", id=experiment, scale=resolved.name):
                output = render_experiment(experiment, resolved)
        except SweepFailure as exc:
            status = "partial"
            failures = exc.failure_payloads()
            raise
        except Exception:
            status = "failed"
            raise
        finally:
            paths = export_session(
                tel,
                telemetry_dir,
                experiment=experiment,
                scale=resolved.name,
                wall_seconds=time.perf_counter() - t0,
                status=status,
                failures=failures,
            )
            print(f"[{experiment}] telemetry: {paths['run']}", file=sys.stderr)
    return output


def schedule(
    tasks: tuple[TranscodeTask, ...] = TABLE_III_TASKS,
    *,
    width: int = 112,
    height: int = 64,
    n_frames: int = 10,
    data_capacity_scale: float = 48.0,
    mapper=None,
) -> CaseStudyResult:
    """Run the batch scheduler case study (paper §V / Fig. 9): simulate
    every task on the baseline and all Table IV variants, then evaluate
    the random / smart / best schedulers."""
    return run_case_study(
        tasks,
        width=width,
        height=height,
        n_frames=n_frames,
        data_capacity_scale=data_capacity_scale,
        mapper=mapper,
    )


def serve(
    requests: list[TranscodeRequest],
    config: ServiceConfig | None = None,
    *,
    control: bool = True,
    resume: bool = False,
    telemetry_dir: str | Path | None = None,
    settings: Settings | None = None,
    slo_spec: str | Path | None = None,
    metrics_out: str | Path | None = None,
    metrics_interval: float | None = None,
) -> ServiceReport:
    """Run one synchronous pass of the transcoding job service.

    Submits ``requests`` to a :class:`~repro.service.TranscodeService`
    built from ``config``, drains it, and (by default) re-runs the same
    submissions under the random-placement control so the report carries
    the serving-mode smart-vs-random margin. With ``telemetry_dir`` the
    pass runs under a telemetry session and exports run artifacts with
    ``experiment: "serve"``.

    Observability knobs (CLI flag > ``settings`` > off):

    - ``slo_spec`` — a JSON SLO spec (see :mod:`repro.obs.slo`); the
      evaluated report lands in ``run.json``'s ``slo`` section (with
      ``telemetry_dir``) and in each metrics snapshot.
    - ``metrics_out`` — a directory that receives live ``metrics.prom``
      / ``slo.json`` snapshots every ``metrics_interval`` seconds while
      the service drains (plus a final flush).
    """
    if settings is not None:
        settings.apply()
        if slo_spec is None:
            slo_spec = settings.slo_spec
        if metrics_out is None:
            metrics_out = settings.metrics_out
        if metrics_interval is None:
            metrics_interval = settings.metrics_interval
    if metrics_interval is None:
        metrics_interval = 30.0
    if telemetry_dir is None and slo_spec is None and metrics_out is None:
        return run_service(
            requests, config, control=control, resume=resume
        )

    from repro.obs import (
        MetricsSnapshotter,
        current,
        evaluate_slo,
        export_session,
        load_slo_spec,
        telemetry_session,
    )

    spec = load_slo_spec(slo_spec) if slo_spec is not None else None
    # Nested sessions are not allowed; reuse an active one (tests often
    # run the facade inside their own session).
    session_cm = nullcontext(current()) if current() else telemetry_session()
    t0 = time.perf_counter()
    status = "ok"
    with session_cm as tel:
        snap_cm = (
            MetricsSnapshotter(
                tel.metrics,
                metrics_out,
                interval_s=metrics_interval,
                slo_spec=spec,
            )
            if metrics_out is not None
            else nullcontext()
        )
        try:
            with snap_cm:
                report = run_service(
                    requests, config, control=control, resume=resume
                )
        except Exception:
            status = "failed"
            raise
        finally:
            slo_payload = (
                evaluate_slo(spec, tel.metrics.as_dict()).to_payload()
                if spec is not None
                else None
            )
            if telemetry_dir is not None:
                paths = export_session(
                    tel,
                    telemetry_dir,
                    experiment="serve",
                    scale=(config or ServiceConfig()).policy,
                    wall_seconds=time.perf_counter() - t0,
                    status=status,
                    slo=slo_payload,
                )
                print(f"[serve] telemetry: {paths['run']}", file=sys.stderr)
    return report


def loadtest(
    spec: LoadtestSpec | None = None,
    config: ServiceConfig | None = None,
    *,
    telemetry_dir: str | Path | None = None,
    settings: Settings | None = None,
    slo_spec: str | Path | None = None,
) -> LoadtestReport:
    """Run an open-loop sustained-traffic load test against the service.

    With ``spec`` omitted, one is built from ``settings`` (or the
    environment's ``REPRO_LOADTEST_*`` variables, or the defaults):
    arrival process, offered rate(s), duration, and workload mix. Each
    rate runs as one leg on a fresh
    :class:`~repro.service.service.TranscodeService` over a virtual
    clock, so even multi-minute scenarios finish in wall milliseconds —
    see :func:`repro.loadgen.run_loadtest` for the mechanics.

    With ``telemetry_dir`` the run exports artifacts under
    ``experiment: "loadtest"``; the offered/admitted/shed accounting and
    per-leg latency percentiles land in ``run.json``'s
    ``meta.loadtest`` section, and an ``slo_spec`` (CLI flag >
    ``settings`` > off) adds the evaluated verdict to the ``slo``
    section, where ``repro slo check`` gates on it.
    """
    if settings is not None:
        settings.apply()
        if slo_spec is None:
            slo_spec = settings.slo_spec
        if spec is None:
            spec = LoadtestSpec(
                arrivals=settings.loadtest_arrivals,
                rates=settings.loadtest_rate,
                duration_s=settings.loadtest_duration,
                mix=settings.loadtest_mix,
            )
    spec = spec or LoadtestSpec()
    if telemetry_dir is None and slo_spec is None:
        return run_loadtest(spec, config)

    from repro.obs import (
        current,
        evaluate_slo,
        export_session,
        load_slo_spec,
        telemetry_session,
    )

    slo = load_slo_spec(slo_spec) if slo_spec is not None else None
    session_cm = nullcontext(current()) if current() else telemetry_session()
    t0 = time.perf_counter()
    status = "ok"
    with session_cm as tel:
        try:
            report = run_loadtest(spec, config)
        except Exception:
            status = "failed"
            raise
        finally:
            slo_payload = (
                evaluate_slo(slo, tel.metrics.as_dict()).to_payload()
                if slo is not None
                else None
            )
            if telemetry_dir is not None:
                paths = export_session(
                    tel,
                    telemetry_dir,
                    experiment="loadtest",
                    scale=spec.arrivals,
                    wall_seconds=time.perf_counter() - t0,
                    status=status,
                    slo=slo_payload,
                )
                print(
                    f"[loadtest] telemetry: {paths['run']}", file=sys.stderr
                )
    return report


def bench_matrix(
    spec,
    *,
    quick: bool = False,
    reps: int = 3,
    out: str | Path | None = None,
    overrides: dict[str, object] | None = None,
) -> dict[str, object]:
    """Run a declarative benchmark matrix and return its artifact.

    ``spec`` is a :class:`~repro.bench.matrix.MatrixSpec` or a path to a
    YAML/JSON spec file (see ``docs/BENCHMARKS.md`` for the schema).
    Each expanded cell resolves its :class:`Settings` with the layering
    **spec < environment < CLI** (``overrides`` is the CLI layer, keyed
    by Settings field name) and runs through this facade's entry points;
    the returned payload carries per-cell status/metrics plus
    ``{rev, dirty, timestamp}`` provenance. With ``out`` the payload is
    also written as a ``matrix.json`` artifact that
    ``repro bench --history`` ingests alongside ``BENCH_*.json``.

    Raises :class:`~repro.bench.matrix.SpecError` (with file/line
    context) on an invalid spec; individual cell failures never raise —
    they land in the payload as ``status: "failed"`` cells.
    """
    from repro.bench.matrix import (
        MatrixSpec,
        load_spec,
        run_matrix,
        write_matrix,
    )

    spec_obj = spec if isinstance(spec, MatrixSpec) else load_spec(spec)
    payload = run_matrix(
        spec_obj, quick=quick, reps=reps, cli_overrides=overrides
    )
    if out is not None:
        write_matrix(payload, out)
    return payload


def fleet_compare(
    fleets=None,
    *,
    objective: str | None = None,
    mix: str = "table3",
    count: int = 16,
    seed: int = 0,
    deadline_s: float | None = None,
    budget_usd: float | None = None,
    width: int = 112,
    height: int = 64,
    n_frames: int = 10,
    telemetry_dir: str | Path | None = None,
    settings: Settings | None = None,
):
    """Compare heterogeneous fleets on one workload, smart vs. random.

    Runs :func:`repro.service.run_fleet_compare` — the serving-mode
    analogue of the cited papers' per-instance-type cost tables — over
    ``fleets`` (default: the shipped
    :data:`~repro.service.fleetcompare.EXAMPLE_FLEETS`), under the
    chosen Pareto ``objective`` (``min-cost`` under ``deadline_s``, or
    ``min-latency`` under a per-core ``budget_usd`` $/hour). With
    ``telemetry_dir`` the run exports artifacts under ``experiment:
    "fleet-compare"`` and the per-fleet table lands in ``run.json``'s
    ``meta.fleet_compare`` section, which ``repro report`` renders and
    ``repro diff`` compares across runs.
    """
    from repro.service.fleetcompare import run_fleet_compare

    if settings is not None:
        settings.apply()
    if objective is None:
        # A plain-throughput objective gives the cost comparison nothing
        # to optimize, so it never applies implicitly: an explicit
        # argument wins, then a cost-aware Settings objective, then the
        # min-cost default.
        from_settings = settings.objective if settings is not None else None
        objective = (
            from_settings
            if from_settings not in (None, "throughput")
            else "min-cost"
        )
    kwargs = dict(
        objective=objective, mix=mix, count=count, seed=seed,
        deadline_s=deadline_s, budget_usd=budget_usd,
        width=width, height=height, n_frames=n_frames,
    )
    if telemetry_dir is None:
        return run_fleet_compare(fleets, **kwargs)

    from repro.obs import current, export_session, telemetry_session

    session_cm = nullcontext(current()) if current() else telemetry_session()
    t0 = time.perf_counter()
    status = "ok"
    with session_cm as tel:
        try:
            report = run_fleet_compare(fleets, **kwargs)
        except Exception:
            status = "failed"
            raise
        finally:
            paths = export_session(
                tel,
                telemetry_dir,
                experiment="fleet-compare",
                scale=objective,
                wall_seconds=time.perf_counter() - t0,
                status=status,
            )
            print(
                f"[fleet-compare] telemetry: {paths['run']}",
                file=sys.stderr,
            )
    return report
