"""One resolved configuration record for every ``REPRO_*`` knob.

Historically each subsystem read its own environment variables at its
own time (``REPRO_JOBS`` in the parallel engine, ``REPRO_CACHE_DIR`` in
the cache, ``REPRO_KERNELS`` in the codec dispatch, ``REPRO_RETRY_*`` /
``REPRO_FAULT_PLAN`` / ``REPRO_RESUME`` / ``REPRO_CHECKPOINT_DIR`` in
the resilience layer). :class:`Settings` consolidates them into a single
dataclass with one documented precedence order:

    **CLI flag > environment variable > built-in default**

:meth:`Settings.resolve` implements exactly that order (pass the CLI
flag values; ``None`` means "flag not given"), and :meth:`Settings.apply`
pushes the resolved values into the subsystems, after which nothing
re-reads the environment. CLI subcommands construct a ``Settings`` from
their flags and read only from it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path

from repro.codec import kernels as _kernels
from repro.resilience.retry import RetryPolicy

__all__ = ["ENV_VARS", "Settings"]

#: Environment variable -> Settings field, for documentation and tests.
ENV_VARS = {
    "REPRO_JOBS": "jobs",
    "REPRO_CACHE_DIR": "cache_dir",
    "REPRO_KERNELS": "kernels",
    "REPRO_SHM": "shm",
    "REPRO_FAULT_PLAN": "fault_plan",
    "REPRO_RESUME": "resume",
    "REPRO_CHECKPOINT_DIR": "checkpoint_dir",
    "REPRO_RETRY_*": "retry",
    "REPRO_SLO_SPEC": "slo_spec",
    "REPRO_METRICS_OUT": "metrics_out",
    "REPRO_METRICS_INTERVAL": "metrics_interval",
    "REPRO_LOADTEST_ARRIVALS": "loadtest_arrivals",
    "REPRO_LOADTEST_RATE": "loadtest_rate",
    "REPRO_LOADTEST_DURATION": "loadtest_duration",
    "REPRO_LOADTEST_MIX": "loadtest_mix",
    "REPRO_FLEET": "fleet",
    "REPRO_OBJECTIVE": "objective",
    "REPRO_BENCH_MATRIX": "bench_matrix",
    "REPRO_BENCH_HISTORY": "bench_history",
}

_TRUTHY = ("1", "true", "yes", "on")


def _parse_rates(raw: str) -> tuple[float, ...]:
    """Parse a comma-separated offered-rate list like ``"4,8,16"``."""
    rates = tuple(
        float(clause) for clause in raw.split(",") if clause.strip()
    )
    if not rates:
        raise ValueError(f"no rates in {raw!r}")
    return rates


@dataclass(frozen=True)
class Settings:
    """Every process-wide knob, fully resolved.

    Fields mirror the historical environment variables (see
    :data:`ENV_VARS`); a constructed ``Settings`` is inert until
    :meth:`apply` installs it.
    """

    jobs: int = 1
    cache_dir: Path | None = None
    cache_enabled: bool = True
    kernels: str = _kernels.DEFAULT_BACKEND
    #: Shared-memory frame transport for multi-process sweeps (see
    #: :mod:`repro.experiments.transport`); ``False`` forces the
    #: historical per-worker decode.
    shm: bool = True
    retry: RetryPolicy = RetryPolicy()
    fault_plan: str | None = None
    resume: bool = False
    checkpoint_dir: Path | None = None
    slo_spec: Path | None = None
    metrics_out: Path | None = None
    metrics_interval: float = 30.0
    loadtest_arrivals: str = "poisson"
    loadtest_rate: tuple[float, ...] = (8.0,)
    loadtest_duration: float = 30.0
    loadtest_mix: str = "table3"
    #: Default fleet spec for serve/loadtest (``name[:count][:$rate]``
    #: clauses; ``None`` = the Table IV default fleet).
    fleet: str | None = None
    #: Smart-placement Pareto objective for the service layer.
    objective: str = "throughput"
    #: Declarative benchmark-matrix spec for ``repro bench`` (YAML/JSON;
    #: see :mod:`repro.bench.matrix`). Existence is checked at use time,
    #: not here, so CI can export the variable before the spec lands.
    bench_matrix: Path | None = None
    #: Directory of ``BENCH_*.json`` / ``matrix*.json`` artifacts for
    #: ``repro bench --history`` (see :mod:`repro.bench.history`).
    bench_history: Path | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        from repro.loadgen.arrivals import ARRIVAL_KINDS
        from repro.loadgen.mixes import MIXES

        if self.loadtest_arrivals not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival process {self.loadtest_arrivals!r}; "
                f"choose from {', '.join(ARRIVAL_KINDS)}"
            )
        if self.loadtest_mix not in MIXES:
            raise ValueError(
                f"unknown workload mix {self.loadtest_mix!r}; "
                f"choose from {', '.join(sorted(MIXES))}"
            )
        if not self.loadtest_rate or any(r <= 0 for r in self.loadtest_rate):
            raise ValueError(
                f"loadtest rates must be > 0, got {self.loadtest_rate}"
            )
        if self.loadtest_duration <= 0:
            raise ValueError(
                f"loadtest duration must be > 0 s, "
                f"got {self.loadtest_duration}"
            )
        if self.kernels not in _kernels.KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {self.kernels!r}; choose from "
                f"{', '.join(_kernels.KERNEL_BACKENDS)}"
            )
        if self.fault_plan:
            # Validate eagerly so a bad plan fails at resolve time, not
            # at the first fault point deep inside a sweep.
            from repro.resilience.faults import parse_fault_plan

            parse_fault_plan(self.fault_plan)
        from repro.service.placement import OBJECTIVES

        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"choose from {', '.join(OBJECTIVES)}"
            )
        if self.fleet is not None:
            # Same eager-validation convention as fault_plan above.
            from repro.service.workers import parse_fleet_spec

            parse_fleet_spec(self.fleet)

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "Settings":
        """Built-in defaults overlaid with the environment variables."""
        return cls(**cls.env_overrides())  # type: ignore[arg-type]

    @classmethod
    def env_overrides(cls) -> dict[str, object]:
        """The constructor kwargs the environment actually sets.

        Only fields whose ``REPRO_*`` variable is present (and parseable)
        appear in the mapping, so callers layering their own defaults
        below the environment — the benchmark matrix resolves **spec <
        env < CLI** this way — can tell "env said 1" apart from "env said
        nothing". ``from_env`` is exactly these kwargs over the built-in
        defaults.
        """
        kwargs: dict[str, object] = {}
        jobs_raw = os.environ.get("REPRO_JOBS", "").strip()
        if jobs_raw:
            try:
                kwargs["jobs"] = max(int(jobs_raw), 1)
            except ValueError:
                pass
        cache_raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
        if cache_raw:
            kwargs["cache_dir"] = Path(cache_raw)
        kernels_raw = os.environ.get("REPRO_KERNELS", "").strip().lower()
        if kernels_raw:
            # Reject unknown names eagerly: a typo'd REPRO_KERNELS used
            # to be silently ignored and only surface (if at all) as a
            # mysteriously slow run on the default backend.
            if kernels_raw not in _kernels.KERNEL_BACKENDS:
                raise ValueError(
                    f"REPRO_KERNELS={kernels_raw!r} is not a registered "
                    f"kernel backend; choose from "
                    f"{', '.join(_kernels.KERNEL_BACKENDS)}"
                )
            kwargs["kernels"] = kernels_raw
        shm_raw = os.environ.get("REPRO_SHM", "").strip().lower()
        if shm_raw:
            kwargs["shm"] = shm_raw in _TRUTHY
        plan_raw = os.environ.get("REPRO_FAULT_PLAN", "").strip()
        if plan_raw:
            kwargs["fault_plan"] = plan_raw
        resume_raw = os.environ.get("REPRO_RESUME", "").strip().lower()
        if resume_raw:
            kwargs["resume"] = resume_raw in _TRUTHY
        ckpt_raw = os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
        if ckpt_raw:
            kwargs["checkpoint_dir"] = Path(ckpt_raw)
        slo_raw = os.environ.get("REPRO_SLO_SPEC", "").strip()
        if slo_raw:
            kwargs["slo_spec"] = Path(slo_raw)
        mout_raw = os.environ.get("REPRO_METRICS_OUT", "").strip()
        if mout_raw:
            kwargs["metrics_out"] = Path(mout_raw)
        mint_raw = os.environ.get("REPRO_METRICS_INTERVAL", "").strip()
        if mint_raw:
            try:
                kwargs["metrics_interval"] = float(mint_raw)
            except ValueError:
                pass
        arrivals_raw = os.environ.get("REPRO_LOADTEST_ARRIVALS", "").strip()
        if arrivals_raw:
            kwargs["loadtest_arrivals"] = arrivals_raw.lower()
        rate_raw = os.environ.get("REPRO_LOADTEST_RATE", "").strip()
        if rate_raw:
            try:
                kwargs["loadtest_rate"] = _parse_rates(rate_raw)
            except ValueError:
                pass
        dur_raw = os.environ.get("REPRO_LOADTEST_DURATION", "").strip()
        if dur_raw:
            try:
                kwargs["loadtest_duration"] = float(dur_raw)
            except ValueError:
                pass
        mix_raw = os.environ.get("REPRO_LOADTEST_MIX", "").strip()
        if mix_raw:
            kwargs["loadtest_mix"] = mix_raw.lower()
        fleet_raw = os.environ.get("REPRO_FLEET", "").strip()
        if fleet_raw:
            kwargs["fleet"] = fleet_raw
        objective_raw = os.environ.get("REPRO_OBJECTIVE", "").strip()
        if objective_raw:
            kwargs["objective"] = objective_raw.lower()
        matrix_raw = os.environ.get("REPRO_BENCH_MATRIX", "").strip()
        if matrix_raw:
            kwargs["bench_matrix"] = Path(matrix_raw)
        history_raw = os.environ.get("REPRO_BENCH_HISTORY", "").strip()
        if history_raw:
            kwargs["bench_history"] = Path(history_raw)
        if any(name.startswith("REPRO_RETRY_") for name in os.environ):
            kwargs["retry"] = RetryPolicy.from_env()
        return kwargs

    @classmethod
    def resolve(
        cls,
        *,
        jobs: int | None = None,
        cache_dir: str | Path | None = None,
        no_cache: bool = False,
        kernels: str | None = None,
        no_shm: bool = False,
        retry: RetryPolicy | None = None,
        fault_plan: str | None = None,
        resume: bool | None = None,
        checkpoint_dir: str | Path | None = None,
        slo_spec: str | Path | None = None,
        metrics_out: str | Path | None = None,
        metrics_interval: float | None = None,
        loadtest_arrivals: str | None = None,
        loadtest_rate: str | tuple[float, ...] | None = None,
        loadtest_duration: float | None = None,
        loadtest_mix: str | None = None,
        fleet: str | None = None,
        objective: str | None = None,
        bench_matrix: str | Path | None = None,
        bench_history: str | Path | None = None,
    ) -> "Settings":
        """Resolve CLI flags over the environment over the defaults.

        Every parameter is a CLI flag value; ``None`` (or ``False`` for
        ``no_cache`` / ``no_shm``) means the flag was not given, so the
        environment (then the default) wins for that field.
        """
        settings = cls.from_env()
        updates: dict[str, object] = {}
        if jobs is not None:
            updates["jobs"] = max(int(jobs), 1)
        if cache_dir is not None:
            updates["cache_dir"] = Path(cache_dir)
        if no_cache:
            updates["cache_enabled"] = False
        if kernels is not None:
            updates["kernels"] = kernels
        if no_shm:
            updates["shm"] = False
        if retry is not None:
            updates["retry"] = retry
        if fault_plan is not None:
            updates["fault_plan"] = fault_plan
        if resume is not None:
            updates["resume"] = bool(resume)
        if checkpoint_dir is not None:
            updates["checkpoint_dir"] = Path(checkpoint_dir)
        if slo_spec is not None:
            updates["slo_spec"] = Path(slo_spec)
        if metrics_out is not None:
            updates["metrics_out"] = Path(metrics_out)
        if metrics_interval is not None:
            updates["metrics_interval"] = float(metrics_interval)
        if loadtest_arrivals is not None:
            updates["loadtest_arrivals"] = loadtest_arrivals.lower()
        if loadtest_rate is not None:
            updates["loadtest_rate"] = (
                _parse_rates(loadtest_rate)
                if isinstance(loadtest_rate, str)
                else tuple(float(r) for r in loadtest_rate)
            )
        if loadtest_duration is not None:
            updates["loadtest_duration"] = float(loadtest_duration)
        if loadtest_mix is not None:
            updates["loadtest_mix"] = loadtest_mix.lower()
        if fleet is not None:
            updates["fleet"] = fleet
        if objective is not None:
            updates["objective"] = objective.lower()
        if bench_matrix is not None:
            updates["bench_matrix"] = Path(bench_matrix)
        if bench_history is not None:
            updates["bench_history"] = Path(bench_history)
        return replace(settings, **updates) if updates else settings  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def apply(self) -> "Settings":
        """Install this configuration process-wide.

        Pushes the resolved values into the sweep engine, the resilience
        layer, and the kernel dispatch; afterwards none of them consults
        the environment again until :func:`reset` (tests) or another
        ``apply``. Returns ``self`` for chaining.
        """
        from repro import resilience
        from repro.experiments import parallel as engine
        from repro.experiments import transport

        engine.configure(
            jobs=self.jobs,
            cache_dir=(
                False if not self.cache_enabled
                else self.cache_dir if self.cache_dir is not None
                else None
            ),
        )
        resilience.configure(
            fault_plan=self.fault_plan if self.fault_plan else None,
            retry=self.retry,
            resume=self.resume,
            checkpoint_dir=self.checkpoint_dir,
        )
        _kernels.select_backend(self.kernels)
        transport.configure(self.shm)
        return self

    @staticmethod
    def reset() -> None:
        """Undo :meth:`apply`: restore every subsystem's env-fallback
        behaviour (used by tests and by long-lived embedding hosts)."""
        from repro import resilience
        from repro.experiments import parallel as engine
        from repro.experiments import transport

        engine.configure(jobs=None, cache_dir=None)
        resilience.reset()
        _kernels.select_backend(None)
        transport.configure(None)
