"""``repro.api``: the unified public facade.

One blessed entry point per workflow, typed records for everything that
crosses the boundary, and a single consolidated :class:`Settings` for
every process-wide knob:

====================  ================================================
workflow              entry point
====================  ================================================
one transcode         :func:`repro.api.encode`
profiled transcode    :func:`repro.api.profile`
paper table/figure    :func:`repro.api.sweep`
batch scheduling      :func:`repro.api.schedule`
job service           :func:`repro.api.serve`
open-loop load test   :func:`repro.api.loadtest`
====================  ================================================

Quickstart::

    from repro import api

    result = api.encode("cricket", preset="medium", crf=23)
    report = api.serve(api.table3_requests(8))
    print(report.render())

The historical aliases (``repro.transcode``, ``repro.profile_transcode``,
``repro.experiments.runner.run``) keep working but emit a
``DeprecationWarning`` pointing here.
"""

import importlib

from repro.api.settings import ENV_VARS, Settings
from repro.api.types import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    JobStatus,
    TranscodeRequest,
    TranscodeResult,
)

#: Lazily re-exported symbols: name -> (module, attribute). Lazy so the
#: typed records stay leaf imports — the service layer imports
#: ``repro.api.types`` while the facade imports the service layer, and
#: eager package imports here would close that cycle.
_LAZY_EXPORTS = {
    "backends": ("repro.api.facade", "backends"),
    "bench_matrix": ("repro.api.facade", "bench_matrix"),
    "encode": ("repro.api.facade", "encode"),
    "fleet_compare": ("repro.api.facade", "fleet_compare"),
    "FleetCompareReport": ("repro.service.fleetcompare", "FleetCompareReport"),
    "FleetDef": ("repro.service.fleetcompare", "FleetDef"),
    "loadtest": ("repro.api.facade", "loadtest"),
    "LoadtestReport": ("repro.loadgen.driver", "LoadtestReport"),
    "LoadtestSpec": ("repro.loadgen.driver", "LoadtestSpec"),
    "profile": ("repro.api.facade", "profile"),
    "render_experiment": ("repro.api.facade", "render_experiment"),
    "schedule": ("repro.api.facade", "schedule"),
    "serve": ("repro.api.facade", "serve"),
    "sweep": ("repro.api.facade", "sweep"),
    "ServiceConfig": ("repro.service.service", "ServiceConfig"),
    "ServiceReport": ("repro.service.service", "ServiceReport"),
    "table3_requests": ("repro.service.service", "table3_requests"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: subsequent access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

__all__ = [
    "ENV_VARS",
    "FleetCompareReport",
    "FleetDef",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_STATES",
    "JobStatus",
    "LoadtestReport",
    "LoadtestSpec",
    "ServiceConfig",
    "ServiceReport",
    "Settings",
    "TranscodeRequest",
    "TranscodeResult",
    "backends",
    "bench_matrix",
    "encode",
    "fleet_compare",
    "loadtest",
    "profile",
    "render_experiment",
    "schedule",
    "serve",
    "sweep",
    "table3_requests",
]
