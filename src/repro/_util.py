"""Shared internal helpers used across the ``repro`` packages.

Nothing in this module is part of the public API; it collects the small
pieces of validation, deterministic randomness, and formatting glue that
would otherwise be duplicated in many modules.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "check_range",
    "check_choice",
    "check_positive",
    "stable_seed",
    "rng_for",
    "clamp",
    "format_table",
    "geometric_mean",
]


def check_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_choice(name: str, value: object, choices: Iterable[object]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``choices``."""
    options = list(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")


def stable_seed(*parts: object) -> int:
    """Derive a deterministic 63-bit seed from arbitrary labels.

    The same sequence of parts always produces the same seed across runs
    and platforms, which keeps synthetic videos and sampled simulations
    reproducible without any global random state.
    """
    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def rng_for(*parts: object) -> np.random.Generator:
    """Return a ``numpy`` generator seeded deterministically from labels."""
    return np.random.default_rng(stable_seed(*parts))


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` to the closed interval ``[lo, hi]``."""
    return lo if value < lo else hi if value > hi else value


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values; raises on empty or nonpositive."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    floatfmt: str = ".3f",
) -> str:
    """Render an ASCII table; floats use ``floatfmt``, everything else ``str``."""

    def cell(v: object) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float) or isinstance(v, np.floating):
            return format(float(v), floatfmt)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    out.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in str_rows)
    return "\n".join(out)
