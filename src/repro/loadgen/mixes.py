"""Workload mixes: weighted request templates over the vbench catalog.

The paper's Table III fixes one four-job mix; a load generator needs
*populations* — weighted distributions over resolution, preset, and CRF
drawn from the vbench catalog (paper Table I) — so sustained-traffic
scenarios exercise the same content diversity the per-clip experiments
do. A :class:`WorkloadMix` is a set of :class:`MixTemplate` rows (clip /
preset / crf / refs, each with a sampling weight); :meth:`WorkloadMix.sample`
draws a deterministic, seeded request sequence from it.

Built-in mixes (see :data:`MIXES`):

- ``table3`` — the paper's Table III tasks, equally weighted (the
  serving-mode baseline);
- ``entropy_spread`` — low / mid / high entropy clips in equal measure,
  spanning the content axis Fig. 7 characterizes;
- ``hd_streams`` — a VOD-shaped mix: mostly 720p/1080p mid-quality
  encodes with a thin 4K tail on slow presets;
- ``screencast`` — the near-static desktop/presentation clips at speed
  presets and high CRF (cheap, bursty interactive traffic).

Sampling uses a seeded PCG64 stream only, so the same ``(mix, n, seed)``
yields the same request sequence in every process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.types import TranscodeRequest
from repro.scheduling.task import TABLE_III_TASKS

__all__ = [
    "MIXES",
    "MixTemplate",
    "WorkloadMix",
    "make_mix",
]


@dataclass(frozen=True)
class MixTemplate:
    """One weighted request template of a workload mix."""

    clip: str
    preset: str = "medium"
    crf: int = 23
    refs: int | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(
                f"template weight must be > 0, got {self.weight} "
                f"({self.clip}/{self.preset}/crf={self.crf})"
            )
        # Validate clip/preset/crf eagerly through the request contract.
        self.request()

    def request(self, *, priority: int = 0,
                deadline_ms: float | None = None) -> TranscodeRequest:
        """The typed request this template stamps out."""
        return TranscodeRequest(
            clip=self.clip, preset=self.preset, crf=self.crf,
            refs=self.refs, priority=priority, deadline_ms=deadline_ms,
        )


@dataclass(frozen=True)
class WorkloadMix:
    """A named, weighted population of request templates."""

    name: str
    templates: tuple[MixTemplate, ...]

    def __post_init__(self) -> None:
        if not self.templates:
            raise ValueError(f"mix {self.name!r} declares no templates")

    def weights(self) -> tuple[float, ...]:
        """Normalized sampling probabilities, template-ordered."""
        raw = [t.weight for t in self.templates]
        total = sum(raw)
        return tuple(w / total for w in raw)

    def sample(self, n: int, *, seed: int = 0) -> list[TranscodeRequest]:
        """Draw ``n`` requests i.i.d. from the weighted templates.

        Deterministic: the same ``(mix, n, seed)`` produces the same
        sequence in any process (seeded PCG64, no global RNG state).
        """
        if n < 0:
            raise ValueError(f"sample size must be >= 0, got {n}")
        rng = np.random.Generator(np.random.PCG64(seed))
        picks = rng.choice(len(self.templates), size=n, p=self.weights())
        return [self.templates[int(i)].request() for i in picks]

    def describe(self) -> str:
        """One line per template: weight, clip, knobs."""
        lines = [f"mix {self.name} ({len(self.templates)} templates):"]
        total = sum(t.weight for t in self.templates)
        for t in self.templates:
            refs = "preset" if t.refs is None else str(t.refs)
            lines.append(
                f"  {t.weight / total:6.1%}  {t.clip:<12s} "
                f"preset={t.preset} crf={t.crf} refs={refs}"
            )
        return "\n".join(lines)


def _table3_mix() -> WorkloadMix:
    return WorkloadMix(
        name="table3",
        templates=tuple(
            MixTemplate(clip=t.video, preset=t.preset, crf=t.crf,
                        refs=t.refs)
            for t in TABLE_III_TASKS
        ),
    )


#: The built-in mixes, by name.
MIXES: dict[str, WorkloadMix] = {
    "table3": _table3_mix(),
    "entropy_spread": WorkloadMix(
        name="entropy_spread",
        templates=(
            # Low entropy (near-static screen content).
            MixTemplate("desktop", "veryfast", 30),
            MixTemplate("presentation", "faster", 28),
            # Mid entropy (natural motion).
            MixTemplate("cricket", "medium", 23),
            MixTemplate("house", "medium", 23),
            # High entropy (heavy irregular motion).
            MixTemplate("holi", "slow", 18),
            MixTemplate("hall", "slow", 18),
        ),
    ),
    "hd_streams": WorkloadMix(
        name="hd_streams",
        templates=(
            MixTemplate("bike", "fast", 23, weight=3.0),        # 720p bulk
            MixTemplate("game2", "medium", 23, weight=3.0),     # 720p bulk
            MixTemplate("funny", "medium", 21, weight=2.0),     # 1080p
            MixTemplate("landscape", "slow", 20, weight=1.0),   # 1080p hq
            MixTemplate("chicken", "slower", 18, weight=0.5),   # 4K tail
        ),
    ),
    "screencast": WorkloadMix(
        name="screencast",
        templates=(
            MixTemplate("desktop", "ultrafast", 32, weight=2.0),
            MixTemplate("desktop", "veryfast", 28, weight=1.0),
            MixTemplate("presentation", "veryfast", 30, weight=2.0),
            MixTemplate("presentation", "faster", 26, weight=1.0),
        ),
    ),
}


def make_mix(name: str) -> WorkloadMix:
    """Look up a built-in mix by name (``ValueError`` if unknown)."""
    try:
        return MIXES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload mix {name!r}; "
            f"choose from {', '.join(sorted(MIXES))}"
        ) from None
