"""The open-loop load-test driver: arrival schedules → TranscodeService.

:func:`run_loadtest` realizes a deterministic arrival schedule
(:mod:`repro.loadgen.arrivals`), samples a request per arrival from a
weighted workload mix (:mod:`repro.loadgen.mixes`), and *offers* the
stream to a :class:`~repro.service.service.TranscodeService` running on
a :class:`~repro.loadgen.clock.VirtualClock`:

- **open loop** (default, wrk-style): every arrival is submitted at its
  scheduled instant no matter how far behind the service is. A full
  queue sheds the request (:class:`~repro.service.queue.QueueFullError`)
  and the driver counts it — offered vs. admitted vs. completed are the
  first-class accounting of the run, published as ``loadtest.*``
  counters and per-leg labeled ``loadtest.requests{outcome=…,leg=…}``.
- **closed loop**: admission waits for queue room, so load adapts to
  service speed and nothing is ever shed — the control that shows *why*
  closed-loop harnesses hide overload (coordinated omission).

Each offered rate runs as one **leg** with a fresh service and a fresh
virtual clock; the baseline profile cache is shared across legs so a
multi-rate sweep pays each unique request's trace-encode exactly once.
Per-leg results carry queue-wait / e2e percentiles and the schedule's
SHA-256 digest, making the determinism contract (same spec ⇒ identical
run.json counts) directly checkable from artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.loadgen.arrivals import ArrivalProcess, make_arrivals
from repro.loadgen.clock import VirtualClock
from repro.loadgen.mixes import WorkloadMix, make_mix
from repro.obs import session as obs
from repro.service.queue import QueueFullError
from repro.service.service import ServiceConfig, TranscodeService

__all__ = [
    "LegResult",
    "LoadtestReport",
    "LoadtestSpec",
    "run_loadtest",
]


@dataclass(frozen=True)
class LoadtestSpec:
    """Everything that shapes one load test (all legs)."""

    arrivals: str = "poisson"
    rates: tuple[float, ...] = (8.0,)
    duration_s: float = 30.0
    mix: str = "table3"
    seed: int = 0
    open_loop: bool = True
    #: Kind-specific arrival knobs (``amplitude`` / ``period_s`` for
    #: diurnal, ``burst`` / ``sojourn_s`` for mmpp).
    arrival_extras: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("loadtest needs at least one offered rate")
        if any(r <= 0 for r in self.rates):
            raise ValueError(f"offered rates must be > 0, got {self.rates}")
        if self.duration_s <= 0:
            raise ValueError(
                f"duration must be > 0 s, got {self.duration_s}"
            )

    def process(self, rate: float) -> ArrivalProcess:
        """The arrival process for one leg at ``rate`` req/s."""
        return make_arrivals(
            self.arrivals, rate, seed=self.seed, **self.arrival_extras
        )

    def workload(self) -> WorkloadMix:
        """The resolved workload mix."""
        return make_mix(self.mix)

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form for run.json metadata."""
        return {
            "arrivals": self.arrivals,
            "rates": list(self.rates),
            "duration_s": self.duration_s,
            "mix": self.mix,
            "seed": self.seed,
            "open_loop": self.open_loop,
            "arrival_extras": dict(self.arrival_extras),
        }


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(values, q)) if values else 0.0


@dataclass
class LegResult:
    """One offered-rate leg's outcome."""

    rate: float
    arrivals: str                 # process description string
    schedule_digest: str
    offered: int
    admitted: int
    shed: int
    completed: int
    failed: int
    duration_s: float
    makespan_s: float             # virtual time until the queue drained
    queue_wait_p50_s: float
    queue_wait_p90_s: float
    queue_wait_p99_s: float
    e2e_p50_s: float
    e2e_p90_s: float
    e2e_p99_s: float
    cost_usd: float = 0.0          # busy-time dollars actually billed
    provisioned_usd: float = 0.0   # fleet hourly rate × leg makespan

    @property
    def achieved_rps(self) -> float:
        """Completions per virtual second over the leg's makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.completed / self.makespan_s

    @property
    def cost_per_completed_usd(self) -> float:
        """Billed busy-time dollars per completed job (0 if none)."""
        if self.completed <= 0:
            return 0.0
        return self.cost_usd / self.completed

    @property
    def jobs_per_dollar(self) -> float:
        """Completions per provisioned dollar over the leg's makespan."""
        if self.provisioned_usd <= 0:
            return 0.0
        return self.completed / self.provisioned_usd

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form for run.json metadata."""
        return {
            "rate": self.rate,
            "arrivals": self.arrivals,
            "schedule_digest": self.schedule_digest,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "duration_s": self.duration_s,
            "makespan_s": self.makespan_s,
            "achieved_rps": self.achieved_rps,
            "queue_wait_p50_s": self.queue_wait_p50_s,
            "queue_wait_p90_s": self.queue_wait_p90_s,
            "queue_wait_p99_s": self.queue_wait_p99_s,
            "e2e_p50_s": self.e2e_p50_s,
            "e2e_p90_s": self.e2e_p90_s,
            "e2e_p99_s": self.e2e_p99_s,
            "cost_usd": self.cost_usd,
            "provisioned_usd": self.provisioned_usd,
            "cost_per_completed_usd": self.cost_per_completed_usd,
            "jobs_per_dollar": self.jobs_per_dollar,
        }


@dataclass
class LoadtestReport:
    """A whole load test: the spec plus one :class:`LegResult` per rate."""

    spec: LoadtestSpec
    legs: list[LegResult]

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form, stored under run.json's ``meta.loadtest``."""
        return {
            "spec": self.spec.to_payload(),
            "legs": [leg.to_payload() for leg in self.legs],
        }

    def render(self) -> str:
        """The offered-rate vs. achieved-throughput/latency table."""
        head = (
            f"loadtest — {self.spec.arrivals} arrivals, mix={self.spec.mix}, "
            f"duration={self.spec.duration_s:g}s, seed={self.spec.seed}, "
            f"{'open' if self.spec.open_loop else 'closed'} loop"
        )
        cols = (
            f"{'offered/s':>10s} {'achieved/s':>10s} {'offered':>8s} "
            f"{'admitted':>8s} {'shed':>6s} {'done':>6s} {'failed':>6s} "
            f"{'wait p50':>9s} {'wait p99':>9s} {'e2e p50':>9s} "
            f"{'e2e p99':>9s} {'jobs/$':>9s}"
        )
        lines = [head, cols]
        for leg in self.legs:
            lines.append(
                f"{leg.rate:>10.2f} {leg.achieved_rps:>10.2f} "
                f"{leg.offered:>8d} {leg.admitted:>8d} {leg.shed:>6d} "
                f"{leg.completed:>6d} {leg.failed:>6d} "
                f"{leg.queue_wait_p50_s:>8.3f}s {leg.queue_wait_p99_s:>8.3f}s "
                f"{leg.e2e_p50_s:>8.3f}s {leg.e2e_p99_s:>8.3f}s "
                f"{leg.jobs_per_dollar:>9.0f}"
            )
        return "\n".join(lines)


def _drain_until(service: TranscodeService, clock: VirtualClock,
                 t_ns: int) -> None:
    """Advance virtual time to ``t_ns``, dispatching at every worker
    busy-horizon crossed on the way (the service only acts when pumped,
    so skipping a horizon would postpone dispatches that — in real time —
    happen before the next arrival)."""
    while service.queue.pending():
        next_free = service.fleet.next_free_ns()
        if next_free is None or next_free > t_ns:
            break
        clock.advance_to_ns(next_free)
        if not service.pump():
            break
    clock.advance_to_ns(t_ns)


def _run_leg(spec: LoadtestSpec, rate: float, config: ServiceConfig,
             profile_cache: dict, leg_index: int) -> LegResult:
    """Offer one leg's schedule to a fresh service and account for it."""
    process = spec.process(rate)
    schedule = process.schedule(spec.duration_s)
    requests = spec.workload().sample(len(schedule), seed=spec.seed)
    clock = VirtualClock()
    service = TranscodeService(
        config, profile_cache=profile_cache, clock=clock
    )
    leg_label = {"leg": str(leg_index)}
    admitted = shed = 0
    with obs.span("loadtest.leg", rate=rate, index=leg_index,
                  arrivals=process.describe()):
        for t_s, request in zip(schedule, requests):
            t_ns = int(round(t_s * 1e9))
            _drain_until(service, clock, t_ns)
            if not spec.open_loop:
                # Closed loop: hold admission until the queue has room —
                # offered load adapts to service speed, nothing sheds.
                while service.queue.depth() >= config.queue_capacity:
                    next_free = service.fleet.next_free_ns()
                    if next_free is None:
                        break  # fleet fully isolated; let submit shed
                    clock.advance_to_ns(next_free)
                    if not service.pump():
                        break
            obs.inc("loadtest.offered")
            try:
                service.submit(request)
            except QueueFullError:
                shed += 1
                obs.inc("loadtest.shed")
                obs.inc("loadtest.requests",
                        labels={"outcome": "shed", **leg_label})
                continue
            admitted += 1
            obs.inc("loadtest.admitted")
            obs.inc("loadtest.requests",
                    labels={"outcome": "admitted", **leg_label})
            service.pump()
        service.run_until_idle()
    makespan_s = clock.now_ns() / 1e9
    statuses = service.statuses()
    completed = sum(1 for s in statuses if s.state == "done")
    failed = sum(1 for s in statuses if s.state == "failed")
    obs.inc("loadtest.completed", completed)
    if completed:
        obs.inc("loadtest.requests", completed,
                labels={"outcome": "completed", **leg_label})
    if failed:
        obs.inc("loadtest.requests", failed,
                labels={"outcome": "failed", **leg_label})
    waits = [s.timings["queue_wait_s"] for s in statuses
             if "queue_wait_s" in s.timings]
    e2es = [s.timings["e2e_s"] for s in statuses if "e2e_s" in s.timings]
    return LegResult(
        rate=rate,
        arrivals=process.describe(),
        schedule_digest=schedule.digest(),
        offered=len(schedule),
        admitted=admitted,
        shed=shed,
        completed=completed,
        failed=failed,
        duration_s=spec.duration_s,
        makespan_s=makespan_s,
        queue_wait_p50_s=_percentile(waits, 50),
        queue_wait_p90_s=_percentile(waits, 90),
        queue_wait_p99_s=_percentile(waits, 99),
        e2e_p50_s=_percentile(e2es, 50),
        e2e_p90_s=_percentile(e2es, 90),
        e2e_p99_s=_percentile(e2es, 99),
        cost_usd=service.fleet.cost_usd(),
        provisioned_usd=service.fleet.hourly_rate * makespan_s / 3600.0,
    )


def run_loadtest(
    spec: LoadtestSpec | None = None,
    config: ServiceConfig | None = None,
) -> LoadtestReport:
    """Run one load test: every rate in ``spec.rates`` as its own leg.

    Each leg gets a fresh :class:`~repro.service.service.TranscodeService`
    on a fresh :class:`~repro.loadgen.clock.VirtualClock`; the baseline
    profile cache is shared so repeated request templates trace-encode
    once across the whole sweep. Fully deterministic for a fixed
    ``(spec, config)`` — schedules, placements, and virtual-time latency
    percentiles are all reproducible bit-for-bit.
    """
    spec = spec or LoadtestSpec()
    config = config or ServiceConfig()
    profile_cache: dict = {}
    legs = [
        _run_leg(spec, rate, config, profile_cache, i)
        for i, rate in enumerate(spec.rates)
    ]
    report = LoadtestReport(spec, legs)
    tel = obs.current()
    if tel is not None:
        # render_run picks the table up from here (``meta.loadtest``).
        tel.meta["loadtest"] = report.to_payload()
    return report
