"""Service clocks: real wall time or a driver-advanced virtual clock.

The service layer stamps every latency-bearing moment — admission,
placement, dispatch, completion — through one :class:`Clock` object
instead of calling ``time.perf_counter_ns()`` directly. That indirection
is what makes sustained-traffic load tests runnable in milliseconds of
wall time:

- :class:`WallClock` (the default) reads the process's monotonic
  perf-counter; a ``repro serve`` run behaves exactly as it always has.
- :class:`VirtualClock` is a manually advanced monotonic counter. The
  load-test driver moves it to each arrival instant, and the service
  *charges* simulated encode time (``cycles / clock_hz``) against
  per-worker busy horizons rather than sleeping — so a ten-minute
  diurnal trace with hundreds of jobs resolves queue-wait and e2e
  percentiles in virtual seconds while the test finishes in wall
  milliseconds, deterministically.

Both clocks expose the same three methods; ``advance_to_ns`` is a no-op
on the wall clock (real time advances itself), and the ``virtual`` flag
tells the service which timing regime to record (measured wall durations
vs. deterministic simulated charges).
"""

from __future__ import annotations

import time

__all__ = ["Clock", "VirtualClock", "WallClock"]


class Clock:
    """Interface shared by :class:`WallClock` and :class:`VirtualClock`.

    ``virtual`` tells consumers whether durations must be *charged*
    (deterministic simulated seconds) or can be *measured* (elapsed
    perf-counter deltas).
    """

    virtual: bool = False

    def now_ns(self) -> int:
        """Current time in integer nanoseconds (monotonic)."""
        raise NotImplementedError

    def advance_to_ns(self, t_ns: int) -> None:
        """Move time forward to ``t_ns`` (never backward)."""
        raise NotImplementedError


class WallClock(Clock):
    """Real time: a thin wrapper over ``time.perf_counter_ns()``."""

    virtual = False

    def now_ns(self) -> int:
        """The process's monotonic perf-counter, in nanoseconds."""
        return time.perf_counter_ns()

    def advance_to_ns(self, t_ns: int) -> None:
        """No-op: wall time advances on its own."""


class VirtualClock(Clock):
    """A manually advanced monotonic clock for simulated-time load tests.

    Starts at ``start_ns`` (default 0, so virtual timestamps read as
    offsets from the start of the scenario) and only moves when the
    driver calls :meth:`advance_to_ns` / :meth:`advance_s`. Attempts to
    move backward are ignored, preserving monotonicity no matter how
    arrival schedules and completion horizons interleave.
    """

    virtual = True

    def __init__(self, start_ns: int = 0) -> None:
        self._now_ns = int(start_ns)

    def now_ns(self) -> int:
        """The current virtual instant, in nanoseconds."""
        return self._now_ns

    def advance_to_ns(self, t_ns: int) -> None:
        """Jump forward to ``t_ns``; ignored if ``t_ns`` is in the past."""
        t_ns = int(t_ns)
        if t_ns > self._now_ns:
            self._now_ns = t_ns

    def advance_s(self, seconds: float) -> None:
        """Jump forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} s (negative)")
        self._now_ns += int(round(seconds * 1e9))
