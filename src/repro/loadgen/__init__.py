"""Open-loop load generation for the transcoding service.

The package that turns the synchronous :mod:`repro.service` layer into a
sustained-traffic testbed:

- :mod:`repro.loadgen.clock` — the :class:`Clock` indirection
  (:class:`WallClock` / :class:`VirtualClock`) the service stamps every
  latency through, so scenarios run in virtual seconds;
- :mod:`repro.loadgen.arrivals` — deterministic, seedable arrival
  processes (Poisson / fixed-interval / diurnal / MMPP) realized as
  byte-identical :class:`ArrivalSchedule` objects;
- :mod:`repro.loadgen.mixes` — weighted workload mixes over the vbench
  catalog (:data:`MIXES`), sampled with seeded PCG64;
- :mod:`repro.loadgen.driver` — :func:`run_loadtest`, which offers a
  schedule open-loop (or closed-loop, for contrast) to a
  :class:`~repro.service.service.TranscodeService` and reports offered /
  admitted / shed / completed accounting with latency percentiles.

The driver is re-exported lazily: the service layer imports
:mod:`repro.loadgen.clock`, and the driver imports the service layer, so
an eager re-export here would complete an import cycle.
"""

from __future__ import annotations

from repro.loadgen.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    ArrivalSchedule,
    DiurnalArrivals,
    FixedIntervalArrivals,
    MmppArrivals,
    PoissonArrivals,
    make_arrivals,
    merge_schedules,
)
from repro.loadgen.clock import Clock, VirtualClock, WallClock
from repro.loadgen.mixes import MIXES, MixTemplate, WorkloadMix, make_mix

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "ArrivalSchedule",
    "Clock",
    "DiurnalArrivals",
    "FixedIntervalArrivals",
    "LegResult",
    "LoadtestReport",
    "LoadtestSpec",
    "MIXES",
    "MixTemplate",
    "MmppArrivals",
    "PoissonArrivals",
    "VirtualClock",
    "WallClock",
    "WorkloadMix",
    "make_arrivals",
    "make_mix",
    "merge_schedules",
    "run_loadtest",
]

#: Driver exports resolved on first touch (breaks the service⇄loadgen
#: import cycle: service → loadgen.clock, loadgen.driver → service).
_LAZY_EXPORTS = {
    "LegResult": "repro.loadgen.driver",
    "LoadtestReport": "repro.loadgen.driver",
    "LoadtestSpec": "repro.loadgen.driver",
    "run_loadtest": "repro.loadgen.driver",
}


def __getattr__(name: str):
    """Lazily import the driver layer's exports."""
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__() -> list[str]:
    """Advertise lazy exports alongside the eager ones."""
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
