"""``repro-ffmpeg``: a command-line transcoder with x264-style options.

Examples::

    repro-ffmpeg -i cricket -o out.ylm -preset medium -crf 23 -refs 3
    repro-ffmpeg -i input.ylm -o out.ylm -preset veryfast
    repro-ffmpeg -i holi -o out.ylm -crf 30 --profile

``-i`` accepts either a ``.ylm`` file path or a vbench short name (the
synthetic stand-in is generated on the fly). ``--profile`` additionally
runs the µarch simulation and prints a VTune-style top-down report.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.codec.presets import PRESET_NAMES, preset_options
from repro.ffmpeg.transcode import transcode
from repro.profiling.perf import profile_transcode
from repro.profiling.vtune import topdown_report
from repro.video.io import read_ylm, write_ylm
from repro.video.vbench import load_video

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ffmpeg",
        description="Transcode a clip with the repro codec (x264-style options).",
    )
    parser.add_argument("-i", "--input", required=True, help=".ylm file or vbench name")
    parser.add_argument("-o", "--output", help="output .ylm (decoded result)")
    parser.add_argument("-preset", "--preset", default="medium", choices=PRESET_NAMES)
    parser.add_argument("-crf", "--crf", type=int, default=23)
    parser.add_argument("-refs", "--refs", type=int, default=None)
    parser.add_argument(
        "--scale", default="proxy", choices=("proxy", "full"),
        help="generation scale for vbench inputs",
    )
    parser.add_argument("--frames", type=int, default=None, help="limit frame count")
    parser.add_argument(
        "--profile", action="store_true",
        help="also run the microarchitecture simulation and print top-down",
    )
    return parser


def _load_input(args: argparse.Namespace):
    if os.path.exists(args.input):
        video = read_ylm(args.input)
    else:
        video = load_video(args.input, scale=args.scale)
    if args.frames is not None:
        video = video.clip(args.frames)
    return video


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        video = _load_input(args)
    except (KeyError, ValueError, OSError) as exc:
        print(f"repro-ffmpeg: error: {exc}", file=sys.stderr)
        return 2

    options = preset_options(args.preset, crf=args.crf, refs=args.refs)
    print(f"transcoding {video.name}: {video.width}x{video.height} "
          f"{len(video)} frames @ {video.fps:g} fps")
    print(f"options: {options.describe()}")

    if args.profile:
        result = profile_transcode(video, options)
        enc = result.encode
        print(topdown_report(result.report, title=video.name))
    else:
        t = transcode(video, options=options)
        enc = t.encode

    print(
        f"done: {enc.total_bits} bits  bitrate={enc.bitrate_kbps:.1f} kbps  "
        f"PSNR={enc.psnr_db:.2f} dB  wall={enc.encode_seconds:.2f}s"
    )
    types = "".join(t.value for t in enc.gop.frame_types)
    print(f"frame types: {types}")

    if args.output:
        from repro.codec.decoder import decode

        decoded = decode(enc.stream.bitstream)
        write_ylm(args.output, decoded.video)
        print(f"wrote decoded output to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
