"""FFmpeg-style facade: the transcode pipeline and a CLI.

The paper profiles ``ffmpeg -i in.mkv -c:v libx264 ...`` invocations;
:func:`repro.ffmpeg.transcode.transcode` is our equivalent entry point
(decode → optional scale filter → encode), and ``repro-ffmpeg`` exposes
it on the command line with x264-style options.
"""

from repro.ffmpeg.transcode import TranscodeResult, transcode

__all__ = ["transcode", "TranscodeResult"]
