"""The transcode pipeline: decode → (filter) → encode.

Transcoding converts one encoded representation into another (paper
§II-A): the input bitstream is decoded to raw frames — a deterministic,
relatively cheap stage — and the frames are re-encoded with the requested
parameters, which is where all the interesting microarchitectural
behaviour lives. Raw frame sequences are accepted too (the "upload"
case, where the mezzanine has already been decoded).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.codec.decoder import decode as decode_stream
from repro.codec.encoder import EncodeResult, Encoder, LoopOptimizations
from repro.codec.options import EncoderOptions
from repro.codec.presets import preset_options
from repro.obs import session as obs
from repro.trace.recorder import Tracer
from repro.video.frame import FrameSequence

__all__ = ["TranscodeResult", "transcode"]


@dataclass
class TranscodeResult:
    """Output of one transcode: the three Fig. 2 metrics plus the stream."""

    encode: EncodeResult
    decode_seconds: float
    total_seconds: float

    # --- the speed / quality / size triangle -------------------------
    @property
    def speed_seconds(self) -> float:
        return self.total_seconds

    @property
    def quality_psnr_db(self) -> float:
        return self.encode.psnr_db

    @property
    def size_bitrate_kbps(self) -> float:
        return self.encode.bitrate_kbps

    @property
    def bitstream(self) -> bytes:
        return self.encode.stream.bitstream


def transcode(
    source: FrameSequence | bytes,
    *,
    preset: str | None = None,
    crf: int = 23,
    refs: int | None = None,
    options: EncoderOptions | None = None,
    tracer: Tracer | None = None,
    loop_opts: LoopOptimizations | None = None,
) -> TranscodeResult:
    """Transcode ``source`` (raw frames or an encoded bitstream).

    Either pass a fully-formed ``options`` object, or a ``preset`` name
    with ``crf``/``refs`` overrides (x264-style). ``refs=None`` with a
    preset keeps that preset's Table II refs value.
    """
    if options is not None and preset is not None:
        raise ValueError("pass either options or preset, not both")
    if options is None:
        name = preset if preset is not None else "medium"
        options = preset_options(name, crf=crf, refs=refs)

    with obs.span(
        "transcode",
        preset=options.preset_name,
        crf=options.crf,
        refs=options.refs,
        source="bitstream" if isinstance(source, bytes) else "frames",
    ):
        t0 = time.perf_counter()
        if isinstance(source, bytes):
            # The decode stage is traced too: a transcode profile covers the
            # whole decode -> re-encode operation, like the paper's.
            with obs.span("transcode.decode", bytes=len(source)):
                decoded = decode_stream(source, tracer=tracer)
            frames = decoded.video
        else:
            frames = source
        decode_seconds = time.perf_counter() - t0

        encoder = Encoder(options, tracer=tracer, loop_opts=loop_opts)
        encode_result = encoder.encode(frames)
    return TranscodeResult(
        encode=encode_result,
        decode_seconds=decode_seconds,
        total_seconds=decode_seconds + encode_result.encode_seconds,
    )
