"""Speedup trends across bench artifacts, with rolling-window drift.

The single-baseline gate (``repro bench --compare``) only sees two
points: the current run and one committed baseline. A sequence of small
drops — each inside the 25% ratio threshold — therefore accumulates
invisibly. This module ingests a *directory* of artifacts
(``BENCH_<rev>.json`` from :mod:`repro.bench.report` plus
``matrix*.json`` from :mod:`repro.bench.matrix`), orders them by the
``timestamp`` recorded inside each payload (filename and mtime are
fallbacks, never the source of truth), and tracks every speedup series
across revisions:

- ``kernel:<name>`` — per-kernel vectorized/reference speedup;
- ``e2e:fig3-slice`` — the end-to-end encode speedup;
- ``matrix:<name>:<cell>:<metric>`` — every numeric metric of every
  ``ok`` matrix cell.

The rolling-window detector flags a series when the **median of its
last K values** drifts more than ``drift`` below the **best value ever
recorded** — the slow-regression case the pairwise gate misses. Edge
cases are explicit: a single run is ``insufficient`` (never flagged),
all-equal runs are ``ok``, and series missing from some revisions (a
kernel added or removed) simply have gaps.

``repro bench --history DIR`` renders the trend table (sparklines per
series) and exits **5** when any series drifts — distinct from the
pairwise gate's exit 4 so CI can tell the two failure modes apart.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from pathlib import Path

from repro.bench.matrix import MATRIX_SCHEMA
from repro.bench.report import BENCH_SCHEMA

__all__ = [
    "DEFAULT_DRIFT",
    "DEFAULT_WINDOW",
    "DriftVerdict",
    "HistoryEntry",
    "TREND_SCHEMA",
    "collect_series",
    "detect_drift",
    "load_history",
    "trend_payload",
]

TREND_SCHEMA = "repro-bench-trend/v1"
DEFAULT_WINDOW = 5
DEFAULT_DRIFT = 0.10


@dataclass(frozen=True)
class HistoryEntry:
    """One ingested artifact, reduced to its tracked series."""

    path: str
    kind: str  # "bench" | "matrix"
    rev: str
    dirty: bool
    timestamp: float
    series: dict[str, float]


@dataclass(frozen=True)
class DriftVerdict:
    """One series' rolling-window verdict."""

    series: str
    n: int
    best: float
    last: float
    median_recent: float
    drop_frac: float  # 1 - median_recent / best
    status: str  # "ok" | "drift" | "insufficient"

    @property
    def flagged(self) -> bool:
        return self.status == "drift"

    def to_payload(self) -> dict[str, object]:
        return {
            "series": self.series,
            "n": self.n,
            "best": self.best,
            "last": self.last,
            "median_recent": self.median_recent,
            "drop_frac": self.drop_frac,
            "status": self.status,
        }


def _bench_series(payload: dict[str, object]) -> dict[str, float]:
    series = {
        f"kernel:{name}": float(row["speedup"])
        for name, row in (payload.get("kernels") or {}).items()  # type: ignore[union-attr]
    }
    e2e = payload.get("e2e") or {}
    if isinstance(e2e, dict) and "speedup" in e2e:
        series["e2e:fig3-slice"] = float(e2e["speedup"])  # type: ignore[arg-type]
    return series


def _matrix_series(payload: dict[str, object]) -> dict[str, float]:
    name = payload.get("name", "?")
    series: dict[str, float] = {}
    for cell in payload.get("cells") or []:  # type: ignore[union-attr]
        if not isinstance(cell, dict) or cell.get("status") != "ok":
            continue
        for metric, value in (cell.get("metrics") or {}).items():
            if isinstance(value, (int, float)):
                series[f"matrix:{name}:{cell.get('id')}:{metric}"] = float(value)
    return series


def load_history(dir_path: str | Path) -> list[HistoryEntry]:
    """Ingest every ``BENCH_*.json`` / ``matrix*.json`` under ``dir_path``.

    Entries come back ordered by the timestamp recorded *inside* each
    payload (pre-timestamp artifacts fall back to file mtime), so
    renames and copies cannot reorder history. Unreadable or
    unrecognized files raise ``ValueError`` — a corrupt artifact in a
    history directory is a real problem, not something to skip quietly.
    """
    root = Path(dir_path)
    if not root.is_dir():
        raise ValueError(f"{root}: not a directory of bench artifacts")
    entries: list[HistoryEntry] = []
    paths = sorted(root.glob("BENCH_*.json")) + sorted(root.glob("matrix*.json"))
    for path in paths:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"{path}: unreadable artifact: {exc}") from None
        schema = payload.get("schema") if isinstance(payload, dict) else None
        if schema == BENCH_SCHEMA:
            kind, series = "bench", _bench_series(payload)
        elif schema == MATRIX_SCHEMA:
            kind, series = "matrix", _matrix_series(payload)
        else:
            raise ValueError(
                f"{path}: unknown artifact schema {schema!r} (expected "
                f"{BENCH_SCHEMA} or {MATRIX_SCHEMA})"
            )
        raw_ts = payload.get("timestamp")
        timestamp = (
            float(raw_ts) if isinstance(raw_ts, (int, float))
            else path.stat().st_mtime
        )
        entries.append(
            HistoryEntry(
                path=str(path),
                kind=kind,
                rev=str(payload.get("rev", "unknown")),
                dirty=bool(payload.get("dirty", False)),
                timestamp=timestamp,
                series=series,
            )
        )
    entries.sort(key=lambda e: (e.timestamp, e.path))
    return entries


def collect_series(
    entries: list[HistoryEntry],
) -> dict[str, list[float | None]]:
    """Align every series over the entry sequence; ``None`` marks an
    entry that did not record that series (a gap, not a zero)."""
    names = sorted({name for e in entries for name in e.series})
    return {
        name: [e.series.get(name) for e in entries] for name in names
    }


def detect_drift(
    series: dict[str, list[float | None]],
    *,
    window: int = DEFAULT_WINDOW,
    drift: float = DEFAULT_DRIFT,
) -> list[DriftVerdict]:
    """Rolling-window verdicts: flag when median(last ``window`` values)
    falls more than ``drift`` below the best value in the history."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if not 0 < drift < 1:
        raise ValueError(f"drift must be in (0, 1), got {drift}")
    verdicts = []
    for name in sorted(series):
        values = [v for v in series[name] if v is not None]
        if len(values) < 2:
            verdicts.append(
                DriftVerdict(
                    series=name,
                    n=len(values),
                    best=values[-1] if values else 0.0,
                    last=values[-1] if values else 0.0,
                    median_recent=values[-1] if values else 0.0,
                    drop_frac=0.0,
                    status="insufficient",
                )
            )
            continue
        best = max(values)
        recent = values[-window:]
        median_recent = float(statistics.median(recent))
        drop = 1.0 - median_recent / best if best > 0 else 0.0
        verdicts.append(
            DriftVerdict(
                series=name,
                n=len(values),
                best=best,
                last=values[-1],
                median_recent=median_recent,
                drop_frac=drop,
                status="drift" if median_recent < best * (1.0 - drift)
                else "ok",
            )
        )
    return verdicts


def trend_payload(
    entries: list[HistoryEntry],
    *,
    window: int = DEFAULT_WINDOW,
    drift: float = DEFAULT_DRIFT,
) -> dict[str, object]:
    """The machine-readable trend report over an ingested history.

    JSON-ready; ``series`` values are aligned to ``entries`` order with
    ``null`` gaps, and ``verdicts`` carry the rolling-window analysis —
    the same shape :func:`repro.obs.export.render_trend` renders.
    """
    series = collect_series(entries)
    verdicts = detect_drift(series, window=window, drift=drift)
    return {
        "schema": TREND_SCHEMA,
        "window": window,
        "drift": drift,
        "entries": [
            {
                "path": e.path,
                "kind": e.kind,
                "rev": e.rev,
                "dirty": e.dirty,
                "timestamp": e.timestamp,
            }
            for e in entries
        ],
        "series": series,
        "verdicts": [v.to_payload() for v in verdicts],
    }
