"""Declarative benchmark matrices: one spec file → a cross-product of runs.

A matrix spec is a small YAML or JSON document that declares *axes*
(kernel backend, workload clip, offered rate, fleet, objective, ...)
whose cross-product expands into cells, each executed through the
:mod:`repro.api` facade as one *leg* kind:

``encode``
    One transcode per cell (``clip`` × ``kernels`` × crf/preset knobs);
    metrics are the speed/quality/size triangle.
``bench``
    One harness kernel micro-benchmark per cell (both backends, as
    :func:`repro.bench.harness.run_kernel_benches` always measures).
``sweep``
    One paper experiment id per cell at a named scale.
``loadtest``
    One open-loop load test per cell (arrival process × rate × mix).
``fleet-compare``
    One fleet definition per cell under a placement objective.

Every cell resolves its knobs through :class:`repro.api.Settings` with
the documented layering **spec < environment < CLI**: the spec's
``settings:`` section sits *below* ``REPRO_*`` variables, which sit
below explicit CLI flags. The axis values that define a cell always pin
their own fields on top — otherwise an exported ``REPRO_KERNELS`` would
collapse a kernel-backend axis to a single backend and the matrix would
silently measure one point.

Schema errors carry file/line context (``spec.yaml:7: unknown axis
...``) via the YAML node marks (or a best-effort key scan for JSON), so
``repro matrix validate`` failures point at the offending line.
"""

from __future__ import annotations

import itertools
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.api.settings import Settings, _parse_rates

__all__ = [
    "LEG_KINDS",
    "MATRIX_SCHEMA",
    "MatrixCell",
    "MatrixSpec",
    "SpecError",
    "load_matrix",
    "load_spec",
    "resolve_cell_settings",
    "run_matrix",
    "write_matrix",
]

MATRIX_SCHEMA = "repro-bench-matrix/v1"

#: Axis/param keys each leg kind understands.
LEG_KINDS: dict[str, frozenset[str]] = {
    "encode": frozenset({"clip", "preset", "crf", "refs", "kernels"}),
    "bench": frozenset({"kernel", "reps"}),
    "sweep": frozenset({"experiment", "scale", "kernels", "jobs"}),
    "loadtest": frozenset(
        {"arrivals", "rate", "duration", "mix", "fleet", "objective",
         "seed", "queue_capacity"}
    ),
    "fleet-compare": frozenset(
        {"fleet", "objective", "mix", "count", "seed", "deadline_s",
         "budget_usd"}
    ),
}

#: Keys a leg *must* find among its axes or params.
_REQUIRED_KEYS: dict[str, frozenset[str]] = {
    "encode": frozenset({"clip"}),
    "bench": frozenset({"kernel"}),
    "sweep": frozenset({"experiment"}),
    "loadtest": frozenset(),
    "fleet-compare": frozenset(),
}

#: Per-leg mapping of axis/param key -> Settings field it pins. Keys not
#: listed here are passed to the leg function directly.
_LEG_SETTINGS_KEYS: dict[str, dict[str, str]] = {
    "encode": {"kernels": "kernels"},
    "bench": {},
    "sweep": {"kernels": "kernels", "jobs": "jobs"},
    "loadtest": {
        "arrivals": "loadtest_arrivals",
        "rate": "loadtest_rate",
        "duration": "loadtest_duration",
        "mix": "loadtest_mix",
        "fleet": "fleet",
        "objective": "objective",
    },
    "fleet-compare": {"mix": "loadtest_mix", "objective": "objective"},
}

#: Settings fields a spec's ``settings:`` section may set. ``retry`` and
#: the matrix/history pointers themselves are excluded: the former is a
#: structured policy with its own env contract, the latter would be
#: circular.
_SPEC_SETTINGS_FIELDS = frozenset(
    {
        "jobs", "cache_dir", "cache_enabled", "kernels", "fault_plan",
        "resume", "checkpoint_dir", "slo_spec", "metrics_out",
        "metrics_interval", "loadtest_arrivals", "loadtest_rate",
        "loadtest_duration", "loadtest_mix", "fleet", "objective",
    }
)

_PATH_FIELDS = frozenset(
    {"cache_dir", "checkpoint_dir", "slo_spec", "metrics_out"}
)

_TOP_KEYS = frozenset(
    {"name", "description", "leg", "axes", "params", "settings"}
)

#: Proxy-clip sizing shared with the CLI's ``--quick`` convention.
_QUICK_SIZING = {"width": 48, "height": 32, "n_frames": 4}


class SpecError(ValueError):
    """A matrix spec failed to parse or validate.

    Carries the spec ``path`` and 1-based ``line`` (when known) so the
    rendered message reads like a compiler diagnostic:
    ``examples/bench/kernel_workload.yaml:9: unknown axis 'preset'``.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | Path | None = None,
        line: int | None = None,
    ) -> None:
        self.path = str(path) if path is not None else None
        self.line = line
        prefix = ""
        if self.path is not None:
            prefix = self.path + (f":{line}" if line else "") + ": "
        super().__init__(prefix + message)


# ----------------------------------------------------------------------
# Spec model
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MatrixCell:
    """One expanded cell: its index, stable id, and axis values."""

    index: int
    cell_id: str
    values: dict[str, Any]


@dataclass(frozen=True)
class MatrixSpec:
    """A validated benchmark-matrix declaration.

    ``axes`` preserves declaration order — cell ids and the expansion
    order derive from it, so the same spec always produces the same
    ``matrix.json`` layout.
    """

    name: str
    leg: str
    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    description: str = ""
    params: dict[str, Any] = field(default_factory=dict)
    settings: dict[str, Any] = field(default_factory=dict)
    #: Originating file, for error messages ("<inline>" when built in code).
    source: str = "<inline>"

    def __post_init__(self) -> None:
        _validate_spec(self)

    def n_cells(self) -> int:
        """Cross-product size: the product of the axis lengths."""
        n = 1
        for _name, values in self.axes:
            n *= len(values)
        return n

    def expand(self) -> list[MatrixCell]:
        """The full cross-product, in axis declaration order."""
        names = [name for name, _values in self.axes]
        cells = []
        for index, combo in enumerate(
            itertools.product(*(values for _name, values in self.axes))
        ):
            values = dict(zip(names, combo))
            cell_id = "/".join(f"{k}={v}" for k, v in values.items())
            cells.append(MatrixCell(index=index, cell_id=cell_id, values=values))
        return cells


def _validate_spec(spec: MatrixSpec) -> None:
    if not spec.name or not str(spec.name).strip():
        raise SpecError("spec needs a non-empty 'name'", path=spec.source)
    if spec.leg not in LEG_KINDS:
        raise SpecError(
            f"unknown leg {spec.leg!r}; choose from "
            + ", ".join(sorted(LEG_KINDS)),
            path=spec.source,
        )
    if not spec.axes:
        raise SpecError(
            "spec needs at least one axis under 'axes'", path=spec.source
        )
    allowed = LEG_KINDS[spec.leg]
    seen_axes: set[str] = set()
    for axis, values in spec.axes:
        if axis in seen_axes:
            raise SpecError(
                f"duplicate axis {axis!r}", path=spec.source
            )
        seen_axes.add(axis)
        if axis not in allowed:
            raise SpecError(
                f"unknown axis {axis!r} for leg {spec.leg!r}; choose from "
                + ", ".join(sorted(allowed)),
                path=spec.source,
            )
        if not values:
            raise SpecError(
                f"axis {axis!r} has no values", path=spec.source
            )
        rendered = [str(v) for v in values]
        if len(set(rendered)) != len(rendered):
            dupes = sorted(
                {v for v in rendered if rendered.count(v) > 1}
            )
            raise SpecError(
                f"axis {axis!r} repeats value(s) {', '.join(dupes)} — "
                "duplicate cells would double-count the same run",
                path=spec.source,
            )
    for key in spec.params:
        if key not in allowed:
            raise SpecError(
                f"unknown param {key!r} for leg {spec.leg!r}; choose from "
                + ", ".join(sorted(allowed)),
                path=spec.source,
            )
        if key in seen_axes:
            raise SpecError(
                f"param {key!r} collides with an axis of the same name",
                path=spec.source,
            )
    missing = _REQUIRED_KEYS[spec.leg] - seen_axes - set(spec.params)
    if missing:
        raise SpecError(
            f"leg {spec.leg!r} needs {', '.join(sorted(missing))} as an "
            "axis or param",
            path=spec.source,
        )
    for key in spec.settings:
        if key not in _SPEC_SETTINGS_FIELDS:
            raise SpecError(
                f"unknown settings field {key!r}; choose from "
                + ", ".join(sorted(_SPEC_SETTINGS_FIELDS)),
                path=spec.source,
            )
    mapping = _LEG_SETTINGS_KEYS[spec.leg]
    for key in seen_axes | set(spec.params):
        pinned = mapping.get(key)
        if pinned is not None and pinned in spec.settings:
            raise SpecError(
                f"settings field {pinned!r} is shadowed by the {key!r} "
                "axis/param — drop one of them",
                path=spec.source,
            )


# ----------------------------------------------------------------------
# Loading (YAML / JSON with line context)
# ----------------------------------------------------------------------

def _yaml_line_map(text: str) -> dict[str, int]:
    """Map ``key`` and ``parent.key`` paths to 1-based line numbers,
    from the YAML node marks (two levels deep is all a spec has)."""
    import yaml

    lines: dict[str, int] = {}
    try:
        root = yaml.compose(text)
    except yaml.YAMLError:
        return lines
    if not isinstance(root, yaml.MappingNode):
        return lines
    for key_node, value_node in root.value:
        key = str(key_node.value)
        lines.setdefault(key, key_node.start_mark.line + 1)
        if isinstance(value_node, yaml.MappingNode):
            for sub_key, _sub_val in value_node.value:
                path = f"{key}.{sub_key.value}"
                lines.setdefault(path, sub_key.start_mark.line + 1)
                lines.setdefault(str(sub_key.value), sub_key.start_mark.line + 1)
    return lines


def _json_line_map(text: str) -> dict[str, int]:
    """Best-effort map of quoted object keys to 1-based line numbers."""
    lines: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        for match in re.finditer(r'"([^"\\]+)"\s*:', line):
            lines.setdefault(match.group(1), lineno)
    return lines


def _parse_yaml(text: str, path: Path) -> tuple[Any, dict[str, int]]:
    try:
        import yaml
    except ImportError:
        raise SpecError(
            "PyYAML is not installed; write the spec as JSON instead",
            path=path,
        ) from None
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        mark = getattr(exc, "problem_mark", None)
        raise SpecError(
            str(exc).replace("\n", " "),
            path=path,
            line=mark.line + 1 if mark is not None else None,
        ) from None
    return data, _yaml_line_map(text)


def _parse_json(text: str, path: Path) -> tuple[Any, dict[str, int]]:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(exc.msg, path=path, line=exc.lineno) from None
    return data, _json_line_map(text)


def load_spec(path: str | Path) -> MatrixSpec:
    """Load and validate a matrix spec file (``.yaml``/``.yml``/``.json``).

    Raises :class:`SpecError` with file/line context on any parse or
    validation failure.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SpecError(f"cannot read spec: {exc}", path=path) from None
    if path.suffix.lower() in (".yaml", ".yml"):
        data, lines = _parse_yaml(text, path)
    else:
        data, lines = _parse_json(text, path)
    return _build_spec(data, lines, path)


def _at(lines: Mapping[str, int], *keys: str) -> int | None:
    for key in keys:
        if key in lines:
            return lines[key]
    return None


def _build_spec(
    data: Any, lines: Mapping[str, int], path: Path
) -> MatrixSpec:
    if not isinstance(data, dict):
        raise SpecError(
            f"spec must be a mapping, got {type(data).__name__}", path=path
        )
    for key in data:
        if key not in _TOP_KEYS:
            raise SpecError(
                f"unknown top-level key {key!r}; choose from "
                + ", ".join(sorted(_TOP_KEYS)),
                path=path,
                line=_at(lines, str(key)),
            )
    for key in ("name", "leg"):
        if key not in data:
            raise SpecError(f"spec is missing {key!r}", path=path)
    axes_raw = data.get("axes")
    if not isinstance(axes_raw, dict) or not axes_raw:
        raise SpecError(
            "'axes' must be a non-empty mapping of axis -> value list",
            path=path,
            line=_at(lines, "axes"),
        )
    axes: list[tuple[str, tuple[Any, ...]]] = []
    for axis, values in axes_raw.items():
        if not isinstance(values, list):
            raise SpecError(
                f"axis {axis!r} must be a list of values, got "
                f"{type(values).__name__}",
                path=path,
                line=_at(lines, f"axes.{axis}", str(axis)),
            )
        for v in values:
            if not isinstance(v, (str, int, float, bool)) or v is None:
                raise SpecError(
                    f"axis {axis!r} values must be scalars, got "
                    f"{type(v).__name__}",
                    path=path,
                    line=_at(lines, f"axes.{axis}", str(axis)),
                )
        axes.append((str(axis), tuple(values)))
    params = data.get("params") or {}
    if not isinstance(params, dict):
        raise SpecError(
            "'params' must be a mapping",
            path=path,
            line=_at(lines, "params"),
        )
    settings = data.get("settings") or {}
    if not isinstance(settings, dict):
        raise SpecError(
            "'settings' must be a mapping",
            path=path,
            line=_at(lines, "settings"),
        )
    try:
        return MatrixSpec(
            name=str(data["name"]),
            leg=str(data["leg"]),
            axes=tuple(axes),
            description=str(data.get("description", "")),
            params={str(k): v for k, v in params.items()},
            settings={str(k): v for k, v in settings.items()},
            source=str(path),
        )
    except SpecError as exc:
        if exc.line is not None:
            raise
        # Re-anchor validation errors at the most relevant line we know.
        token = _guess_error_token(str(exc))
        raise SpecError(
            str(exc).split(": ", 1)[-1],
            path=path,
            line=_at(lines, *token),
        ) from None


def _guess_error_token(message: str) -> tuple[str, ...]:
    """Pull quoted identifiers out of a validation message so the
    re-raised error can point at their defining line."""
    quoted = re.findall(r"'([^']+)'", message)
    keys: list[str] = []
    for name in quoted:
        keys.extend((f"axes.{name}", f"params.{name}",
                     f"settings.{name}", name))
    keys.extend(("axes", "leg", "name"))
    return tuple(keys)


# ----------------------------------------------------------------------
# Settings resolution: spec < env < CLI (< the cell's own axis pins)
# ----------------------------------------------------------------------

def _coerce_setting(fieldname: str, value: Any) -> Any:
    if fieldname == "jobs":
        return int(value)
    if fieldname == "loadtest_rate":
        if isinstance(value, str):
            return _parse_rates(value)
        if isinstance(value, (list, tuple)):
            return tuple(float(v) for v in value)
        return (float(value),)
    if fieldname in ("loadtest_duration", "metrics_interval"):
        return float(value)
    if fieldname in ("cache_enabled", "resume"):
        return bool(value)
    if fieldname in _PATH_FIELDS:
        return Path(str(value))
    if fieldname in ("kernels", "objective", "loadtest_arrivals",
                     "loadtest_mix"):
        return str(value).lower()
    return value


def resolve_cell_settings(
    spec: MatrixSpec,
    cell: MatrixCell | Mapping[str, Any],
    cli_overrides: Mapping[str, Any] | None = None,
) -> Settings:
    """Resolve one cell's :class:`Settings` with the documented layering.

    Weakest to strongest: the spec's ``settings:`` section, then the
    environment (:meth:`Settings.env_overrides`), then ``cli_overrides``
    (flag values, already field-named), then the Settings-mapped axis
    values and params that define this cell — which always win, since
    they *are* the cell's identity.
    """
    values = cell.values if isinstance(cell, MatrixCell) else dict(cell)
    spec_layer = {
        key: _coerce_setting(key, value)
        for key, value in spec.settings.items()
    }
    mapping = _LEG_SETTINGS_KEYS[spec.leg]
    pin_layer = {}
    for key, value in {**spec.params, **values}.items():
        fieldname = mapping.get(key)
        if fieldname is not None:
            pin_layer[fieldname] = _coerce_setting(fieldname, value)
    env_layer = Settings.env_overrides()
    cli_layer = {
        key: _coerce_setting(key, value)
        for key, value in (cli_overrides or {}).items()
        if value is not None
    }
    return Settings(**{**spec_layer, **env_layer, **cli_layer, **pin_layer})


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def _leg_knobs(spec: MatrixSpec, cell: MatrixCell) -> dict[str, Any]:
    """The cell's direct leg kwargs: params + axis values, minus the
    keys that resolved through Settings."""
    mapping = _LEG_SETTINGS_KEYS[spec.leg]
    knobs = {**spec.params, **cell.values}
    return {k: v for k, v in knobs.items() if k not in mapping}


def _run_encode(knobs: dict[str, Any], settings: Settings,
                *, quick: bool) -> dict[str, float]:
    from repro.api import encode

    sizing = dict(_QUICK_SIZING) if quick else {}
    overrides: dict[str, Any] = {}
    if "preset" in knobs:
        overrides["preset"] = str(knobs["preset"])
    if "crf" in knobs:
        overrides["crf"] = int(knobs["crf"])
    if "refs" in knobs:
        overrides["refs"] = int(knobs["refs"])
    result = encode(str(knobs["clip"]), **overrides, **sizing)
    return {
        "encode_s": float(result.encode_seconds),
        "psnr_db": float(result.psnr_db),
        "bitrate_kbps": float(result.bitrate_kbps),
    }


def _run_bench_leg(knobs: dict[str, Any], *, reps: int) -> dict[str, float]:
    from repro.bench.harness import KERNEL_BENCH_NAMES, run_kernel_benches
    from repro.obs import MetricsRegistry

    name = str(knobs["kernel"])
    if name not in KERNEL_BENCH_NAMES:
        raise ValueError(
            f"unknown kernel workload {name!r}; choose from "
            + ", ".join(KERNEL_BENCH_NAMES)
        )
    rows = run_kernel_benches(
        MetricsRegistry(), reps=int(knobs.get("reps", reps)), names=[name]
    )
    return {k: float(v) for k, v in rows[name].items()}


def _run_sweep(knobs: dict[str, Any]) -> dict[str, float]:
    from repro.api import sweep

    t0 = time.perf_counter()
    output = sweep(str(knobs["experiment"]), str(knobs.get("scale", "quick")))
    return {
        "wall_s": time.perf_counter() - t0,
        "output_lines": float(len(output.splitlines())),
    }


def _run_loadtest(knobs: dict[str, Any], settings: Settings,
                  *, quick: bool) -> dict[str, float]:
    from repro.api import LoadtestSpec, ServiceConfig, loadtest
    from repro.service import parse_fleet_spec

    sizing = dict(_QUICK_SIZING) if quick else {}
    seed = int(knobs.get("seed", 0))
    spec = LoadtestSpec(
        arrivals=settings.loadtest_arrivals,
        rates=settings.loadtest_rate,
        duration_s=settings.loadtest_duration,
        mix=settings.loadtest_mix,
        seed=seed,
    )
    config = ServiceConfig(
        fleet=(parse_fleet_spec(settings.fleet) if settings.fleet
               else ServiceConfig.fleet),
        objective=settings.objective,
        seed=seed,
        queue_capacity=int(knobs.get("queue_capacity", 64)),
        **sizing,
    )
    report = loadtest(spec, config)
    legs = report.legs
    return {
        "offered": float(sum(leg.offered for leg in legs)),
        "admitted": float(sum(leg.admitted for leg in legs)),
        "shed": float(sum(leg.shed for leg in legs)),
        "completed": float(sum(leg.completed for leg in legs)),
        "failed": float(sum(leg.failed for leg in legs)),
        "achieved_rps": float(legs[-1].achieved_rps) if legs else 0.0,
        "e2e_p99_s": max((leg.e2e_p99_s for leg in legs), default=0.0),
    }


def _resolve_fleets(value: Any):
    """A fleet-compare axis value: a shipped fleet name, or NAME=SPEC."""
    from repro.service.fleetcompare import EXAMPLE_FLEETS, FleetDef

    if value is None:
        return None
    raw = str(value)
    for fleet in EXAMPLE_FLEETS:
        if fleet.name == raw:
            return (fleet,)
    name, sep, spec = raw.partition("=")
    if sep and name.strip() and spec.strip():
        return (FleetDef(name=name.strip(), spec=spec.strip()),)
    raise ValueError(
        f"unknown fleet {raw!r}: expected a shipped fleet name "
        f"({', '.join(f.name for f in EXAMPLE_FLEETS)}) or NAME=SPEC"
    )


def _run_fleet_compare(knobs: dict[str, Any], settings: Settings,
                       *, quick: bool) -> dict[str, float]:
    from repro.api import fleet_compare

    sizing = dict(_QUICK_SIZING) if quick else {}
    report = fleet_compare(
        _resolve_fleets(knobs.get("fleet")),
        objective=settings.objective,
        mix=settings.loadtest_mix,
        count=int(knobs.get("count", 8 if quick else 16)),
        seed=int(knobs.get("seed", 0)),
        deadline_s=knobs.get("deadline_s"),
        budget_usd=knobs.get("budget_usd"),
        **sizing,
    )
    best = report.ranked()[0]
    return {
        "completed": float(best.completed),
        "failed": float(best.failed),
        "jobs_per_dollar": float(best.jobs_per_dollar),
        "e2e_p99_s": float(best.e2e_p99_s),
        "cost_per_completed_usd": float(best.cost_per_completed_usd),
    }


def _run_cell(spec: MatrixSpec, cell: MatrixCell, settings: Settings,
              *, quick: bool, reps: int) -> dict[str, float]:
    knobs = _leg_knobs(spec, cell)
    if spec.leg == "encode":
        return _run_encode(knobs, settings, quick=quick)
    if spec.leg == "bench":
        return _run_bench_leg(knobs, reps=reps)
    if spec.leg == "sweep":
        return _run_sweep(knobs)
    if spec.leg == "loadtest":
        return _run_loadtest(knobs, settings, quick=quick)
    if spec.leg == "fleet-compare":
        return _run_fleet_compare(knobs, settings, quick=quick)
    raise ValueError(f"unknown leg {spec.leg!r}")  # unreachable post-validate


def run_matrix(
    spec: MatrixSpec,
    *,
    quick: bool = False,
    reps: int = 3,
    cli_overrides: Mapping[str, Any] | None = None,
) -> dict[str, object]:
    """Execute every cell of ``spec`` and return the matrix artifact.

    Cells run in expansion order; a failing cell records ``status:
    "failed"`` with its error and the matrix continues (partial coverage
    beats none — the caller decides how to gate). Settings are resolved
    and applied per cell and reset afterwards, so a matrix run never
    leaks configuration into the host process.
    """
    from repro.bench.report import current_rev, working_tree_dirty

    cells = spec.expand()
    records: list[dict[str, object]] = []
    try:
        for cell in cells:
            t0 = time.perf_counter()
            record: dict[str, object] = {
                "id": cell.cell_id,
                "values": dict(cell.values),
                "status": "ok",
                "error": None,
                "metrics": {},
            }
            try:
                settings = resolve_cell_settings(spec, cell, cli_overrides)
                settings.apply()
                record["metrics"] = _run_cell(
                    spec, cell, settings, quick=quick, reps=reps
                )
            except Exception as exc:  # noqa: BLE001 — per-cell isolation
                record["status"] = "failed"
                record["error"] = f"{type(exc).__name__}: {exc}"
            record["wall_s"] = time.perf_counter() - t0
            records.append(record)
    finally:
        Settings.reset()
    return {
        "schema": MATRIX_SCHEMA,
        "name": spec.name,
        "description": spec.description,
        "leg": spec.leg,
        "rev": current_rev(),
        "dirty": working_tree_dirty(),
        "timestamp": time.time(),
        "quick": quick,
        "axes": {name: list(values) for name, values in spec.axes},
        "cells": records,
    }


def write_matrix(
    payload: dict[str, object], path: str | Path = "matrix.json"
) -> Path:
    """Write the matrix artifact as JSON; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_matrix(path: str | Path) -> dict[str, object]:
    """Read a matrix artifact; raises ValueError on a schema mismatch."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != MATRIX_SCHEMA:
        raise ValueError(
            f"{path}: not a {MATRIX_SCHEMA} artifact "
            f"(schema={payload.get('schema')!r})"
        )
    return payload
