"""Bench artifacts: BENCH_<rev>.json writing, rendering, and comparison.

The comparison contract is ratio-based so a checked-in baseline produced
on one machine gates CI runs on another: absolute nanoseconds move with
the host, but the vectorized-over-reference *speedup* of the same
workload is a property of the code. A regression is any tracked speedup
falling below ``baseline * (1 - threshold)``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.obs import MetricsRegistry

__all__ = [
    "BENCH_SCHEMA",
    "bench_artifact_path",
    "build_payload",
    "compare_bench",
    "current_rev",
    "load_bench",
    "render_bench",
    "working_tree_dirty",
    "write_bench",
]

BENCH_SCHEMA = "repro-bench/v1"
DEFAULT_THRESHOLD = 0.25


def current_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def working_tree_dirty() -> bool:
    """Whether the working tree has uncommitted changes.

    A dirty tree means ``git rev-parse`` names a commit the measured code
    does not match, so artifacts produced from one must say so — the
    filename gains a ``+dirty`` suffix and the payload records the flag.
    Outside a checkout (or if git fails) the tree counts as clean, since
    there is no revision claim to mislabel.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return bool(out.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        return False


def build_payload(
    kernel_results: dict[str, dict[str, float]],
    e2e: dict[str, object],
    registry: MetricsRegistry,
    *,
    quick: bool = False,
) -> dict[str, object]:
    """Assemble the full ``BENCH_*.json`` payload from run results.

    Besides the measurements, the payload self-describes its provenance:
    ``rev`` (short git revision), ``dirty`` (uncommitted changes were
    present), and ``timestamp`` (epoch seconds) — so history ordering
    (:mod:`repro.bench.history`) never has to trust filenames.
    """
    return {
        "schema": BENCH_SCHEMA,
        "rev": current_rev(),
        "dirty": working_tree_dirty(),
        "timestamp": time.time(),
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "kernels": kernel_results,
        "e2e": e2e,
        "metrics": registry.as_dict(),
    }


def bench_artifact_path(
    payload: dict[str, object], out_dir: str | Path = "."
) -> Path:
    """Conventional artifact filename for a payload: ``BENCH_<rev>.json``,
    with a ``+dirty`` suffix when the payload was measured on a working
    tree that did not match its recorded revision."""
    rev = payload.get("rev", "unknown")
    if payload.get("dirty"):
        rev = f"{rev}+dirty"
    return Path(out_dir) / f"BENCH_{rev}.json"


def write_bench(payload: dict[str, object], path: str | Path | None = None) -> Path:
    """Write the payload as JSON; default filename is ``BENCH_<rev>.json``."""
    target = Path(path) if path is not None else bench_artifact_path(payload)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def load_bench(path: str | Path) -> dict[str, object]:
    """Read a bench artifact; raises ValueError on a schema mismatch."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a {BENCH_SCHEMA} artifact "
            f"(schema={payload.get('schema')!r})"
        )
    return payload


def render_bench(payload: dict[str, object]) -> str:
    """Human-readable summary of one bench artifact."""
    lines = [
        f"bench {payload['rev']}"
        + ("+dirty" if payload.get("dirty") else "")
        + (" (quick)" if payload.get("quick") else "")
        + f" — python {payload['host']['python']}, numpy {payload['host']['numpy']}",
        "",
        f"{'kernel':34s} {'ref ns/blk':>12s} {'vec ns/blk':>12s} {'speedup':>8s}",
    ]
    kernels: dict[str, dict[str, float]] = payload["kernels"]  # type: ignore[assignment]
    extra_backends = sorted(
        {
            backend
            for row in kernels.values()
            for backend in row.get("speedups", {})
            if backend != "vectorized"
        }
    )
    for name in sorted(kernels):
        row = kernels[name]
        lines.append(
            f"{name:34s} {row['reference_ns_per_block']:12.0f} "
            f"{row['vectorized_ns_per_block']:12.0f} {row['speedup']:7.2f}x"
        )
    if extra_backends:
        lines += [
            "",
            f"{'kernel (speedup vs reference)':34s} "
            + " ".join(f"{backend:>12s}" for backend in extra_backends),
        ]
        for name in sorted(kernels):
            speedups = kernels[name].get("speedups", {})
            cells = []
            for backend in extra_backends:
                ratio = speedups.get(backend)
                cells.append(f"{ratio:11.2f}x" if ratio is not None else f"{'—':>12s}")
            lines.append(f"{name:34s} " + " ".join(cells))
    e2e: dict[str, object] = payload["e2e"]  # type: ignore[assignment]
    lines += [
        "",
        f"e2e fig3 slice ({len(e2e['cells'])} cells x {e2e['n_frames']} frames "
        f"@ {e2e['width']}x{e2e['height']}):",
    ]
    backend_rows = e2e.get("backends")
    if backend_rows:
        name_w = max(len(b) for b in backend_rows)
        for backend, info in backend_rows.items():
            lines.append(
                f"  {backend:<{name_w}s} {info['total_s']:6.2f}s "
                f"({info['frames_per_s']:.1f} frames/s, "
                f"{info['speedup']:.2f}x vs reference)"
            )
    else:  # pre-registry artifact: only the original two backends
        lines += [
            f"  reference  {e2e['reference_s']:.2f}s "
            f"({e2e['reference_frames_per_s']:.1f} frames/s)",
            f"  vectorized {e2e['vectorized_s']:.2f}s "
            f"({e2e['vectorized_frames_per_s']:.1f} frames/s)",
            f"  speedup    {e2e['speedup']:.2f}x",
        ]
    return "\n".join(lines)


def _tracked_speedups(payload: dict[str, object]) -> dict[str, float]:
    """Workload -> speedup-over-reference map the gate compares.

    The unsuffixed rows (``kernel:<name>``, ``e2e:fig3-slice``) are the
    historical vectorized-over-reference ratios; registry backends beyond
    the original two contribute suffixed rows (``kernel:<name>:batched``,
    ``e2e:fig3-slice:batched``, ...) that show up as ``(new)`` against
    older baselines and gate normally once re-baselined.
    """
    tracked: dict[str, float] = {}
    for name, row in payload["kernels"].items():  # type: ignore[union-attr]
        tracked[f"kernel:{name}"] = row["speedup"]
        for backend, ratio in row.get("speedups", {}).items():
            if backend != "vectorized":
                tracked[f"kernel:{name}:{backend}"] = ratio
    e2e = payload["e2e"]
    tracked["e2e:fig3-slice"] = e2e["speedup"]  # type: ignore[index]
    for backend, info in e2e.get("backends", {}).items():  # type: ignore[union-attr]
        if backend not in ("reference", "vectorized"):
            tracked[f"e2e:fig3-slice:{backend}"] = info["speedup"]
    return tracked


def compare_bench(
    current: dict[str, object],
    baseline: dict[str, object],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[str, list[str]]:
    """Compare two artifacts by speedup ratio.

    Returns ``(report, regressions)`` where ``regressions`` names every
    tracked workload whose current speedup dropped too far below the
    baseline's: ``threshold`` for the end-to-end slice, and twice that
    (capped at 50%) for individual kernels, whose micro timings are
    noisier but whose real failure mode — a vectorized path silently
    falling back to scalar — collapses the ratio far past any noise.
    Workloads present on only one side are reported but never counted as
    regressions (the set may grow over time).
    """
    cur = _tracked_speedups(current)
    base = _tracked_speedups(baseline)
    kernel_threshold = min(2 * threshold, 0.5)
    lines = [
        f"comparing {current.get('rev')} against baseline {baseline.get('rev')} "
        f"(threshold: -{threshold:.0%} e2e, -{kernel_threshold:.0%} kernels)",
        "",
        f"{'workload':40s} {'baseline':>9s} {'current':>9s} {'delta':>8s}",
    ]
    regressions: list[str] = []
    for name in sorted(set(cur) | set(base)):
        if name not in cur:
            lines.append(f"{name:40s} {base[name]:8.2f}x {'—':>9s}  (removed)")
            continue
        if name not in base:
            lines.append(f"{name:40s} {'—':>9s} {cur[name]:8.2f}x  (new)")
            continue
        delta = cur[name] / base[name] - 1.0
        limit = threshold if name.startswith("e2e:") else kernel_threshold
        flag = ""
        if cur[name] < base[name] * (1.0 - limit):
            flag = "  REGRESSION"
            regressions.append(name)
        lines.append(
            f"{name:40s} {base[name]:8.2f}x {cur[name]:8.2f}x {delta:+7.1%}{flag}"
        )
    lines.append("")
    if regressions:
        lines.append(
            f"{len(regressions)} regression(s): " + ", ".join(regressions)
        )
    else:
        lines.append("no regressions")
    return "\n".join(lines), regressions
