"""Benchmark workloads: per-kernel micro-benchmarks and the fig3 slice.

Every workload is deterministic (fixed seeds, fixed shapes) and is run
under every *available* kernel backend with the same inputs, so the
per-kernel speedups isolate exactly what each rewrite bought (rows keep
the historical ``reference``/``vectorized`` columns plus per-backend
``backends``/``speedups`` maps for the registry's extra backends).
Per-repetition wall times go through the shared
:class:`repro.obs.MetricsRegistry` histograms; the summary payload embeds
the registry snapshot so ``BENCH_*.json`` doubles as a telemetry
artifact.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable

import numpy as np

from repro.codec import kernels
from repro.obs import MetricsRegistry

__all__ = [
    "E2E_CELLS",
    "KERNEL_BENCH_NAMES",
    "run_bench",
    "run_e2e_fig3",
    "run_kernel_benches",
]

# The fig3 slice: corners plus the default operating point of the paper's
# crf x refs heatmap grid (§III-A), encoded end to end.
E2E_CELLS: tuple[tuple[int, int], ...] = (
    (1, 1),
    (1, 8),
    (23, 1),
    (23, 8),
    (51, 1),
    (51, 8),
)
_E2E_FRAMES = 12
_E2E_SIZE = (112, 64)  # (width, height)


def _bench_scene(width: int = 112, height: int = 64, n_frames: int = 12):
    from repro.video.synthetic import SceneSpec, generate_scene

    return generate_scene(
        SceneSpec(
            width=width, height=height, n_frames=n_frames, seed=3, name="bench"
        )
    )


def _time_call(fn: Callable[[], object], reps: int) -> list[float]:
    """Wall time of ``fn`` over ``reps`` repetitions (after one warmup)."""
    fn()  # warmup: first-touch caches, lazy imports
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return times


# --- kernel workloads -------------------------------------------------------
# Each builder returns (units, thunk): `thunk()` runs the workload once
# under the ambient backend; `units` is the block count for ns/block.


def _bench_forward_4x4():
    from repro.codec.transform import forward_4x4

    rng = np.random.default_rng(11)
    blocks = rng.uniform(-128, 128, size=(512, 4, 4))
    return 512, lambda: forward_4x4(blocks)


def _bench_satd_batch():
    from repro.codec.transform import satd_batch

    rng = np.random.default_rng(12)
    sets = rng.uniform(-64, 64, size=(64, 16, 4, 4))
    return 64, lambda: satd_batch(sets)


def _bench_encode_blocks():
    from repro.codec.entropy import BitWriter, encode_blocks

    rng = np.random.default_rng(13)
    levels = rng.integers(-4, 5, size=(96, 4, 4)).astype(np.int32)
    levels[np.abs(levels) == 1] = 0  # sparse-ish, like real residuals

    def thunk():
        encode_blocks(BitWriter(), levels)

    return 96, thunk


def _mb_grid(plane: np.ndarray) -> list[tuple[int, int]]:
    h, w = plane.shape
    return [(y, x) for y in range(0, h - 15, 16) for x in range(0, w - 15, 16)]


def _bench_predict_4x4_blocks():
    from repro.codec.intra import predict_4x4_blocks

    video = _bench_scene(n_frames=2)
    src = video.frames[0].luma
    recon = video.frames[1].luma
    mbs = _mb_grid(src)

    def thunk():
        for y, x in mbs:
            predict_4x4_blocks(src[y : y + 16, x : x + 16], recon, y, x)

    return len(mbs), thunk


def _bench_best_intra_16x16():
    from repro.codec.intra import best_intra_16x16

    video = _bench_scene(n_frames=2)
    src = video.frames[0].luma
    recon = video.frames[1].luma
    mbs = _mb_grid(src)

    def thunk():
        for y, x in mbs:
            best_intra_16x16(src[y : y + 16, x : x + 16], recon, y, x)

    return len(mbs), thunk


def _motion_setup():
    from repro.codec.motion import PaddedReference

    video = _bench_scene(n_frames=2)
    cur_plane = video.frames[1].luma
    ref = PaddedReference.from_plane(video.frames[0].luma, pad=24)
    return cur_plane, ref, _mb_grid(cur_plane)


def _bench_motion_search_hex():
    from repro.codec.motion import motion_search

    cur_plane, ref, mbs = _motion_setup()

    def thunk():
        for y, x in mbs:
            motion_search(
                cur_plane[y : y + 16, x : x + 16], ref, y, x, method="hex"
            )

    return len(mbs), thunk


def _bench_subpel_refine():
    from repro.codec.motion import motion_search, subpel_refine

    cur_plane, ref, mbs = _motion_setup()
    starts = [
        motion_search(cur_plane[y : y + 16, x : x + 16], ref, y, x, method="hex")
        for y, x in mbs
    ]

    def thunk():
        for (y, x), res in zip(mbs, starts):
            subpel_refine(
                cur_plane[y : y + 16, x : x + 16], ref, y, x, res, subme=7
            )

    return len(mbs), thunk


def _bench_deblock_plane():
    from repro.codec.deblock import deblock_plane

    video = _bench_scene(n_frames=1)
    plane = video.frames[0].luma
    n_blocks = (plane.shape[0] // 4) * (plane.shape[1] // 4)
    return n_blocks, lambda: deblock_plane(plane, qp=28)


def _bench_encode_chroma_plane():
    from repro.codec.chroma import encode_chroma_plane
    from repro.codec.entropy import BitWriter

    video = _bench_scene(n_frames=2)
    plane = video.frames[0].luma[::2, ::2]  # chroma-resolution plane
    prev = video.frames[1].luma[::2, ::2]

    def thunk():
        encode_chroma_plane(BitWriter(), plane, prev, luma_qp=26)

    n_blocks = (plane.shape[0] // 8) * (plane.shape[1] // 8)
    return n_blocks, thunk


_KERNEL_BENCHES: dict[str, Callable[[], tuple[int, Callable[[], object]]]] = {
    "transform.forward_4x4": _bench_forward_4x4,
    "transform.satd_batch": _bench_satd_batch,
    "entropy.encode_blocks": _bench_encode_blocks,
    "intra.predict_4x4_blocks": _bench_predict_4x4_blocks,
    "intra.best_intra_16x16": _bench_best_intra_16x16,
    "motion.motion_search_hex": _bench_motion_search_hex,
    "motion.subpel_refine": _bench_subpel_refine,
    "deblock.deblock_plane": _bench_deblock_plane,
    "chroma.encode_chroma_plane": _bench_encode_chroma_plane,
}

KERNEL_BENCH_NAMES: tuple[str, ...] = tuple(_KERNEL_BENCHES)


def run_kernel_benches(
    registry: MetricsRegistry,
    *,
    reps: int = 3,
    names: Iterable[str] | None = None,
) -> dict[str, dict[str, float]]:
    """Time each kernel workload under every available backend.

    Returns ``{kernel: row}`` where each row keeps the historical
    ``reference_ns_per_block`` / ``vectorized_ns_per_block`` / ``speedup``
    columns (so old baselines stay comparable) and adds ``backends``
    (ns/block per backend) and ``speedups`` (vs. reference, per
    non-reference backend). Per-rep seconds additionally land in
    ``registry`` histograms named ``bench.kernel.<name>.<backend>_s``.
    """
    backends = kernels.available_backends()
    results: dict[str, dict[str, float]] = {}
    for name in names if names is not None else KERNEL_BENCH_NAMES:
        builder = _KERNEL_BENCHES[name]
        per_backend: dict[str, float] = {}
        units = 0
        for backend in backends:
            with kernels.backend_scope(backend):
                units, thunk = builder()
                times = _time_call(thunk, reps)
            hist = registry.histogram(f"bench.kernel.{name}.{backend}_s")
            for t in times:
                hist.observe(t)
            per_backend[backend] = min(times)
        ref = per_backend["reference"]
        results[name] = {
            "blocks": float(units),
            "reference_ns_per_block": ref / units * 1e9,
            "vectorized_ns_per_block": per_backend["vectorized"] / units * 1e9,
            "speedup": ref / per_backend["vectorized"],
            "backends": {b: t / units * 1e9 for b, t in per_backend.items()},
            "speedups": {
                b: ref / t for b, t in per_backend.items() if b != "reference"
            },
        }
    return results


def run_e2e_fig3(
    registry: MetricsRegistry,
    *,
    reps: int = 2,
    cells: tuple[tuple[int, int], ...] = E2E_CELLS,
    n_frames: int = _E2E_FRAMES,
) -> dict[str, object]:
    """Encode the fig3 slice end to end under every available backend.

    The slice is the encode stage of the paper's Figure-3 crf x refs grid
    (the simulator downstream is backend-independent). Returns the
    historical reference/vectorized totals and speedup plus a per-backend
    ``backends`` map (``{total_s, frames_per_s, speedup}`` each).
    """
    from repro.codec.encoder import encode
    from repro.codec.options import EncoderOptions

    width, height = _E2E_SIZE
    video = _bench_scene(width=width, height=height, n_frames=n_frames)
    backends = kernels.available_backends()
    totals = dict.fromkeys(backends, 0.0)
    per_cell = []
    for crf, refs in cells:
        opts = EncoderOptions(crf=crf, refs=refs)
        cell_times: dict[str, float] = {}
        for backend in backends:
            with kernels.backend_scope(backend):
                times = _time_call(lambda: encode(video, opts), reps)
            hist = registry.histogram(f"bench.e2e.crf{crf}_refs{refs}.{backend}_s")
            for t in times:
                hist.observe(t)
            cell_times[backend] = min(times)
            totals[backend] += min(times)
        ref_s = cell_times["reference"]
        per_cell.append(
            {
                "crf": crf,
                "refs": refs,
                "reference_s": ref_s,
                "vectorized_s": cell_times["vectorized"],
                "speedup": ref_s / cell_times["vectorized"],
                "backends": dict(cell_times),
                "speedups": {
                    b: ref_s / t
                    for b, t in cell_times.items()
                    if b != "reference"
                },
            }
        )
    n_encoded = n_frames * len(cells)
    return {
        "width": width,
        "height": height,
        "n_frames": n_frames,
        "cells": per_cell,
        "reference_s": totals["reference"],
        "vectorized_s": totals["vectorized"],
        "reference_frames_per_s": n_encoded / totals["reference"],
        "vectorized_frames_per_s": n_encoded / totals["vectorized"],
        "speedup": totals["reference"] / totals["vectorized"],
        "backends": {
            b: {
                "total_s": total,
                "frames_per_s": n_encoded / total,
                "speedup": totals["reference"] / total,
            }
            for b, total in totals.items()
        },
    }


def run_bench(
    *,
    reps: int = 3,
    e2e_reps: int = 2,
    quick: bool = False,
    names: Iterable[str] | None = None,
) -> dict[str, object]:
    """Run the full suite and return the ``BENCH_*.json`` payload.

    ``quick`` trims the e2e slice to its three unique crf values at one
    refs setting and single repetitions — for smoke use; quick artifacts
    are still comparable because the gate reads speedup ratios.
    ``names`` restricts the kernel workloads to a subset (the matrix
    bench leg times one kernel per cell this way).
    """
    from repro.bench.report import build_payload

    registry = MetricsRegistry()
    # Kernel workloads are cheap, so even quick mode keeps best-of-N —
    # single-shot micro timings are too noisy for a ratio gate.
    kernel_results = run_kernel_benches(registry, reps=max(reps, 3), names=names)
    if quick:
        e2e = run_e2e_fig3(
            registry, reps=1, cells=((1, 1), (23, 8), (51, 1)), n_frames=8
        )
    else:
        e2e = run_e2e_fig3(registry, reps=e2e_reps)
    return build_payload(kernel_results, e2e, registry, quick=quick)
