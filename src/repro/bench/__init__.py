"""Repeatable micro/macro benchmark harness for the codec hot path.

The harness times every backend-dispatched kernel (see
:mod:`repro.codec.kernels`) under both the ``reference`` and
``vectorized`` backends, plus an end-to-end encode of a small Figure-3
slice, and emits a machine-readable ``BENCH_<rev>.json`` artifact.
Timings are recorded through the :mod:`repro.obs` metrics registry so
bench runs share the telemetry plumbing used everywhere else.

Comparisons between artifacts are *ratio-based*: a regression is a drop
in the vectorized-over-reference speedup, which is stable across machines
of different absolute speed. ``repro bench --compare BASELINE.json``
exits with code 4 when any tracked speedup fell by more than the
threshold (25% by default) — the CI bench-smoke gate.
"""

from repro.bench.harness import (
    E2E_CELLS,
    KERNEL_BENCH_NAMES,
    run_bench,
    run_e2e_fig3,
    run_kernel_benches,
)
from repro.bench.report import (
    BENCH_SCHEMA,
    bench_artifact_path,
    compare_bench,
    current_rev,
    load_bench,
    render_bench,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "E2E_CELLS",
    "KERNEL_BENCH_NAMES",
    "bench_artifact_path",
    "compare_bench",
    "current_rev",
    "load_bench",
    "render_bench",
    "run_bench",
    "run_e2e_fig3",
    "run_kernel_benches",
    "write_bench",
]
