"""Repeatable micro/macro benchmark harness for the codec hot path.

The harness times every backend-dispatched kernel (see
:mod:`repro.codec.kernels`) under both the ``reference`` and
``vectorized`` backends, plus an end-to-end encode of a small Figure-3
slice, and emits a machine-readable ``BENCH_<rev>.json`` artifact.
Timings are recorded through the :mod:`repro.obs` metrics registry so
bench runs share the telemetry plumbing used everywhere else.

Comparisons between artifacts are *ratio-based*: a regression is a drop
in the vectorized-over-reference speedup, which is stable across machines
of different absolute speed. ``repro bench --compare BASELINE.json``
exits with code 4 when any tracked speedup fell by more than the
threshold (25% by default) — the CI bench-smoke gate.

Two declarative layers sit on top (see ``docs/BENCHMARKS.md``):

- :mod:`repro.bench.matrix` — YAML/JSON benchmark matrices whose axis
  cross-product drives encode/bench/sweep/loadtest/fleet-compare cells
  through the :mod:`repro.api` facade (``repro bench --matrix SPEC``);
- :mod:`repro.bench.history` — the ``BENCH_*``/``matrix*`` trend
  tracker with a rolling-window drift detector that catches slow
  regressions the pairwise gate misses (``repro bench --history DIR``,
  exit 5 on drift).
"""

from repro.bench.harness import (
    E2E_CELLS,
    KERNEL_BENCH_NAMES,
    run_bench,
    run_e2e_fig3,
    run_kernel_benches,
)
from repro.bench.history import (
    DEFAULT_DRIFT,
    DEFAULT_WINDOW,
    TREND_SCHEMA,
    DriftVerdict,
    HistoryEntry,
    collect_series,
    detect_drift,
    load_history,
    trend_payload,
)
from repro.bench.matrix import (
    LEG_KINDS,
    MATRIX_SCHEMA,
    MatrixCell,
    MatrixSpec,
    SpecError,
    load_matrix,
    load_spec,
    resolve_cell_settings,
    run_matrix,
    write_matrix,
)
from repro.bench.report import (
    BENCH_SCHEMA,
    bench_artifact_path,
    compare_bench,
    current_rev,
    load_bench,
    render_bench,
    working_tree_dirty,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_DRIFT",
    "DEFAULT_WINDOW",
    "DriftVerdict",
    "E2E_CELLS",
    "HistoryEntry",
    "KERNEL_BENCH_NAMES",
    "LEG_KINDS",
    "MATRIX_SCHEMA",
    "MatrixCell",
    "MatrixSpec",
    "SpecError",
    "TREND_SCHEMA",
    "bench_artifact_path",
    "collect_series",
    "compare_bench",
    "current_rev",
    "detect_drift",
    "load_bench",
    "load_history",
    "load_matrix",
    "load_spec",
    "render_bench",
    "resolve_cell_settings",
    "run_bench",
    "run_e2e_fig3",
    "run_kernel_benches",
    "run_matrix",
    "trend_payload",
    "working_tree_dirty",
    "write_bench",
    "write_matrix",
]
