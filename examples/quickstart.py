"""Quickstart: transcode a vbench clip and inspect the result.

Run with::

    python examples/quickstart.py

Loads the synthetic stand-in for vbench's ``cricket`` clip, transcodes it
with the x264 ``medium`` preset at crf 23 (the paper's defaults), prints
the speed/quality/size triangle, and verifies the bitstream decodes back
to the encoder's reconstruction bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro import decode, load_video
from repro.ffmpeg import transcode


def main() -> None:
    # The proxy scale keeps this instant; scale="full" renders the
    # catalog geometry (1280x720 for cricket).
    video = load_video("cricket", width=160, height=96, n_frames=12)
    print(f"input: {video.name} {video.width}x{video.height} "
          f"{len(video)} frames @ {video.fps:g} fps")

    result = transcode(video, preset="medium", crf=23)
    enc = result.encode
    print("\n--- the speed / quality / size triangle (paper Fig. 2) ---")
    print(f"speed   : {result.total_seconds * 1e3:8.1f} ms wall clock")
    print(f"quality : {result.quality_psnr_db:8.2f} dB PSNR")
    print(f"size    : {result.size_bitrate_kbps:8.1f} kbps "
          f"({enc.total_bits} bits)")

    types = "".join(t.value for t in enc.gop.frame_types)
    print(f"\nGOP structure (display order): {types}")
    skips = sum(s.skip_mbs for s in enc.frame_stats)
    total_mbs = enc.stream.frames[0].mb_count * len(video)
    print(f"skip macroblocks: {skips}/{total_mbs} "
          f"({100 * skips / total_mbs:.1f}%)")

    # Round-trip check: the decoder must reproduce the encoder's
    # reconstruction exactly.
    decoded = decode(result.bitstream)
    recon = np.stack(
        [f.recon[: video.height, : video.width]
         for f in enc.stream.frames_in_display_order()]
    )
    exact = np.array_equal(recon, np.stack([f.luma for f in decoded.video]))
    print(f"\ndecoder round-trip bit-exact: {exact}")
    assert exact


if __name__ == "__main__":
    main()
