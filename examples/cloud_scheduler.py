"""Cloud scheduling: place transcoding tasks on heterogeneous servers.

Run with::

    python examples/cloud_scheduler.py

Reproduces the paper's §III-D2 case study: the four Table III tasks are
profiled on the baseline server, each variant server (Table IV) is
simulated, and the random / smart / best schedulers are compared. The
smart scheduler sees only the baseline characterization — never the
per-server runtimes — yet recovers most of the oracle's benefit.
"""

from __future__ import annotations

from repro._util import format_table
from repro.scheduling.casestudy import run_case_study


def main() -> None:
    print("simulating Table III tasks on all Table IV configurations ...\n")
    study = run_case_study(width=112, height=64, n_frames=10)

    # Per-task speedups on each server.
    rows = []
    for task in study.tasks:
        base = study.baseline_cycles[task.task_id]
        counters = study.counters[task.task_id]
        row = [
            f"{task.video} crf={task.crf} refs={task.refs} {task.preset}",
            f"mem={counters.memory_bound:.0f}% bs={counters.bad_speculation:.0f}%",
        ]
        row += [
            (base / study.cycles[task.task_id][cfg] - 1) * 100
            for cfg in study.config_names
        ]
        rows.append(row)
    print(format_table(
        ["task", "bottleneck"] + [f"{c} %" for c in study.config_names],
        rows,
        floatfmt="+.2f",
    ))

    print("\nscheduler comparison:")
    rows = []
    for name in ("random", "smart", "best"):
        a = study.assignments[name]
        placements = " ".join(
            f"T{t}->{c}" for t, c in sorted(a.placement.items())
        )
        rows.append([name, a.mean_speedup_pct, placements])
    print(format_table(["scheduler", "mean speedup %", "placement"], rows))

    print(
        f"\nsmart beats random by {study.smart_vs_random_pct:+.2f} pp "
        f"(paper: +3.72) and matches the oracle's placement on "
        f"{study.smart_matches_best_fraction * 100:.0f}% of tasks "
        f"(paper: 75%)."
    )


if __name__ == "__main__":
    main()
