"""Streaming ladder: pick crf/preset per rung like an adaptive service.

Run with::

    python examples/streaming_ladder.py

A streaming provider transcodes each upload into a ladder of renditions
(different quality/size points). This example sweeps crf and preset on
one clip, prints the trade-off surface, and shows how the
microarchitectural profile shifts along the ladder — the phenomenon the
paper characterizes in Figures 3-6.
"""

from __future__ import annotations

from repro import load_video
from repro._util import format_table
from repro.profiling import profile_transcode
from repro.codec.presets import preset_options


def main() -> None:
    video = load_video("game2", width=128, height=80, n_frames=10)
    print(f"upload: {video.name} {video.width}x{video.height} proxy\n")

    # A typical ladder: high-quality archive down to bandwidth-saver.
    ladder = [
        ("archive", preset_options("slow", crf=12, refs=3)),
        ("hd", preset_options("medium", crf=23, refs=3)),
        ("sd", preset_options("fast", crf=31, refs=2)),
        ("saver", preset_options("veryfast", crf=40, refs=1)),
    ]

    rows = []
    for rung, options in ladder:
        profiled = profile_transcode(video, options)
        c = profiled.counters
        rows.append([
            rung, options.preset_name, options.crf,
            c.psnr_db, c.bitrate_kbps, c.time_seconds * 1e3,
            c.backend_bound, c.bad_speculation, c.branch_mpki, c.l1d_mpki,
        ])

    print(format_table(
        ["rung", "preset", "crf", "PSNR", "kbps", "sim ms",
         "BE%", "BS%", "brMPKI", "L1dMPKI"],
        rows,
        floatfmt=".1f",
    ))

    print(
        "\nNote how the bandwidth-saver rungs (high crf) become more "
        "back-end/memory bound while branch behaviour gets more "
        "predictable — exactly the paper's Fig. 3/5 trend. A scheduler "
        "could route them to cache-rich servers (see cloud_scheduler.py)."
    )


if __name__ == "__main__":
    main()
