"""Adaptive streaming: pick transcoding parameters per client condition.

Run with::

    python examples/adaptive_streaming.py

The paper closes by noting its characterization "can guide better
resource utilization for adaptive video streaming services" (§V). This
example shows that guidance in action: we sweep a clip's parameter space
once, build the Pareto frontier over (quality, size, compute), and then
answer live placement questions — which operating point for a 3G client?
which for a live re-encode with a tight compute deadline?
"""

from __future__ import annotations

from repro._util import format_table
from repro.experiments.runner import ExperimentScale, SweepRunner
from repro.scheduling.adaptive import (
    pareto_frontier,
    select_for_bandwidth,
    select_for_deadline,
)


def main() -> None:
    scale = ExperimentScale(
        name="adaptive-example",
        width=112,
        height=64,
        n_frames=10,
        crf_values=(8, 16, 23, 31, 40, 48),
        refs_values=(1, 4),
        sweep_video="girl",
    )
    print(f"sweeping {scale.sweep_video}: "
          f"{len(scale.crf_values)}x{len(scale.refs_values)} parameter grid ...")
    records = SweepRunner(scale).crf_refs_sweep()

    frontier = pareto_frontier(records)
    rows = [
        [p.crf, p.refs, p.psnr_db, p.bitrate_kbps, p.time_seconds * 1e3]
        for p in frontier
    ]
    print("\nPareto frontier (quality vs size vs compute):")
    print(format_table(
        ["crf", "refs", "PSNR(dB)", "kbps", "sim ms"], rows, floatfmt=".1f"
    ))
    print(f"({len(records) - len(frontier)} of {len(records)} sweep points "
          "were dominated and pruned)")

    print("\nper-client selections:")
    mid_rate = frontier[len(frontier) // 2].bitrate_kbps
    scenarios = [
        ("fiber client", lambda: select_for_bandwidth(records, 1e6)),
        (f"capped link ({mid_rate:.0f} kbps)",
         lambda: select_for_bandwidth(records, mid_rate)),
        ("2G fallback (100 kbps)", lambda: select_for_bandwidth(records, 100.0)),
        ("live re-encode (tight compute)",
         lambda: select_for_deadline(
             records, min(p.time_seconds for p in frontier) * 1.2
         )),
    ]
    for label, pick in scenarios:
        point = pick()
        if point is None:
            print(f"  {label:34s} -> no feasible point (drop resolution)")
        else:
            print(f"  {label:34s} -> crf={point.crf} refs={point.refs} "
                  f"({point.psnr_db:.1f} dB @ {point.bitrate_kbps:.0f} kbps)")


if __name__ == "__main__":
    main()
