"""Profile a transcode, then recompile with AutoFDO and Graphite.

Run with::

    python examples/profile_and_optimize.py

Reproduces the paper's §III-D workflow end to end:

1. profile a transcode with the VTune-style top-down analysis,
2. collect a training profile (the ``perf record`` step) on
   representative clips,
3. "recompile" with AutoFDO (profile-guided layout + branch hints) and
   with Graphite (polyhedral loop transforms),
4. measure the speedups and show *where* they come from.
"""

from __future__ import annotations

from repro import EncoderOptions, load_video
from repro.codec.encoder import Encoder
from repro.optim import build_autofdo, build_default, build_graphite, collect_profile
from repro.profiling.perf import profile_transcode
from repro.profiling.vtune import topdown_report
from repro.trace.recorder import RecordingTracer


def main() -> None:
    options = EncoderOptions(crf=23, refs=3)
    target = load_video("cricket", width=128, height=80, n_frames=10)

    # --- 1. baseline profile -----------------------------------------
    base = profile_transcode(target, options)
    print(topdown_report(base.report, title="cricket, default -O2 build"))

    # --- 2. training profile (perf record on representative inputs) ---
    print("\ncollecting AutoFDO training profile on desktop + holi ...")
    streams = []
    for name in ("desktop", "holi"):
        clip = load_video(name, width=128, height=80, n_frames=6)
        build = build_default()
        tracer = RecordingTracer(build.program)
        Encoder(options, tracer=tracer).encode(clip)
        streams.append(tracer.stream)
    profile = collect_profile(streams)
    hottest = profile.hottest_first()[:5]
    print("hottest kernels:", ", ".join(
        f"{k} ({100 * profile.heat(k):.1f}%)" for k in hottest
    ))

    # --- 3. rebuilds ----------------------------------------------------
    fdo = build_autofdo(profile)
    graphite = build_graphite()
    print(f"\n{fdo.describe()}")
    print(f"{graphite.describe()}")

    # --- 4. measurement -------------------------------------------------
    fdo_run = profile_transcode(target, options, program=fdo.program)
    gr_run = profile_transcode(
        target, options, program=graphite.program, loop_opts=graphite.loop_opts
    )

    def speedup(run):
        return (base.report.cycles / run.report.cycles - 1) * 100

    print("\n--- results (paper: AutoFDO 4.66% avg, Graphite 4.42% avg) ---")
    print(f"AutoFDO : {speedup(fdo_run):+5.2f}%   "
          f"L1i MPKI {base.counters.l1i_mpki:.2f} -> "
          f"{fdo_run.counters.l1i_mpki:.2f}, "
          f"branch MPKI {base.counters.branch_mpki:.2f} -> "
          f"{fdo_run.counters.branch_mpki:.2f}")
    print(f"Graphite: {speedup(gr_run):+5.2f}%   "
          f"L1d MPKI {base.counters.l1d_mpki:.2f} -> "
          f"{gr_run.counters.l1d_mpki:.2f}, "
          f"L2 MPKI {base.counters.l2_mpki:.2f} -> "
          f"{gr_run.counters.l2_mpki:.2f}")

    same_fdo = base.encode.stream.bitstream == fdo_run.encode.stream.bitstream
    same_gr = base.encode.stream.bitstream == gr_run.encode.stream.bitstream
    print(f"\nbitstreams unchanged by recompilation: "
          f"AutoFDO={same_fdo} Graphite={same_gr}")


if __name__ == "__main__":
    main()
