"""Figure 3 benchmark: FE/BE/BS-bound heatmaps across crf x refs.

Shape targets (paper §IV-A1): raising crf or refs lowers the front-end
and bad-speculation bound fractions and raises the back-end bound
fraction; the front end stays a small, slowly-varying slice throughout.
"""

import pytest

from repro.experiments import fig3_heatmaps


@pytest.mark.paperfig
def test_fig3_heatmaps(benchmark, scale, show):
    result = benchmark.pedantic(
        fig3_heatmaps.run, args=(scale,), rounds=1, iterations=1
    )
    show(result.render())
    deltas = result.corner_deltas()
    assert deltas["backend"] > 0, "BE bound must rise toward high crf+refs"
    assert deltas["bad_speculation"] < 0, "BS bound must fall"
    # Front-end bound stays a small fraction everywhere (paper: "only a
    # small fraction ... do not change significantly").
    assert result.frontend.max() < 25.0
