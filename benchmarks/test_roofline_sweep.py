"""Roofline extension benchmark: operational intensity across crf x refs.

The paper's §IV-A argument: increasing crf or refs lowers operational
intensity, which is why the workload slides toward the memory-bound
region. This bench verifies the intensity trends are negative along both
axes, making the roofline explanation quantitative.
"""

import pytest

from repro.experiments import roofline_sweep


@pytest.mark.paperfig
def test_roofline_sweep(benchmark, scale, show):
    result = benchmark.pedantic(
        roofline_sweep.run, args=(scale,), rounds=1, iterations=1
    )
    show(result.render())
    assert result.intensity_trend_along_crf() < 0
    assert result.intensity_trend_along_refs() < 0
