"""Benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (run pytest with ``-s`` to
see them). ``REPRO_BENCH_SCALE`` selects the proxy sizing: ``quick``
(default, tens of seconds per figure), ``medium``, or ``full`` (the
paper's 816-combination grids — hours).

The sweep-driven figures (3, 4, 5) share one memoized sweep per session,
so their combined cost is one sweep plus rendering. The whole harness
routes through the sweep engine's cache-then-compute path: set
``REPRO_JOBS=N`` to shard sweeps across N worker processes and
``REPRO_CACHE_DIR=DIR`` to persist results on disk, which makes repeat
benchmark runs (e.g. before/after an encoder change at ``full`` scale)
near-free for unchanged code.
"""

from __future__ import annotations

import os

import pytest

from repro.codec import kernels
from repro.experiments import parallel
from repro.experiments.runner import SCALES


def pytest_configure(config):
    config.addinivalue_line("markers", "paperfig: regenerates a paper figure/table")


def pytest_collection_modifyitems(items):
    """Honor the kernel backend switch (see :mod:`repro.codec.kernels`).

    The figures here are *performance* measurements; on the scalar
    reference backend the absolute timings are meaningless (10-40x slower
    than what the repo ships), so rather than silently produce bogus
    numbers we skip with an explanation. Outputs are bit-identical across
    backends, so nothing but wall time is lost.
    """
    if kernels.active_backend() != "reference":
        return
    skip = pytest.mark.skip(
        reason="REPRO_KERNELS=reference selects the scalar teaching backend; "
        "perf figures are only meaningful on the vectorized backend"
    )
    for item in items:
        item.add_marker(skip)


def pytest_terminal_summary(terminalreporter):
    """Report persistent-cache usage so warm/cold runs are explainable."""
    cache = parallel.default_cache()
    if cache is None:
        return
    stats = cache.stats()
    terminalreporter.write_line(
        f"repro sweep cache: {stats.entries} entries "
        f"({stats.total_bytes / 1024.0:.1f} KiB) at {stats.root} "
        f"[jobs={parallel.default_jobs()}]"
    )


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {name!r}"
        )
    return SCALES[name]


@pytest.fixture()
def show(capsys):
    """Print through pytest's capture so figures are always visible."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
