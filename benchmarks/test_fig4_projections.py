"""Figure 4 benchmark: the PSNR/bitrate lines and time-vs-refs elbows.

Shape targets: crf pins PSNR (lines are flat); line length (the bitrate
range reachable via refs) shrinks with crf — "low crf benefits more from
increasing refs"; transcode time grows with refs with diminishing slope.
"""

import pytest

from repro.experiments import fig4_projections


@pytest.mark.paperfig
def test_fig4_projections(benchmark, scale, show):
    result = benchmark.pedantic(
        fig4_projections.run, args=(scale,), rounds=1, iterations=1
    )
    show(result.render())
    lines = result.projection_a
    # Quality ladder: PSNR strictly ordered by crf.
    psnrs = [l.psnr_db for l in lines]
    assert psnrs == sorted(psnrs, reverse=True)
    # Diminishing refs benefit: the highest-crf line is no longer than the
    # lowest-crf line (absolute bitrate range shrinks with crf).
    assert lines[-1].line_length <= lines[0].line_length + 1.0
    # Projection B: time rises with refs for the default crf.
    mid_crf = result.crf_values[len(result.crf_values) // 2]
    times = result.projection_b[mid_crf]
    refs = result.refs_values
    assert times[refs[-1]] >= times[refs[0]]
