"""Ablation benchmarks for µarch design choices (DESIGN.md §6).

- branch predictor choice vs bad-speculation slots,
- data-cache capacity scaling vs MPKI,
- AutoFDO layout vs the default interleaved layout (i-cache working set).
"""

import pytest

from repro._util import format_table
from repro.codec.encoder import Encoder
from repro.codec.options import EncoderOptions
from repro.optim import build_autofdo, build_default, collect_profile
from repro.profiling.perf import profile_transcode
from repro.trace.recorder import RecordingTracer
from repro.uarch.configs import config_by_name
from repro.uarch.simulator import simulate
from repro.video.vbench import load_video


@pytest.fixture(scope="module")
def clip():
    return load_video("cricket", width=96, height=64, n_frames=8)


@pytest.fixture(scope="module")
def trace(clip):
    build = build_default()
    tracer = RecordingTracer(build.program)
    Encoder(EncoderOptions(crf=23, refs=2, bframes=1), tracer=tracer).encode(clip)
    return tracer.stream, build.program


@pytest.mark.paperfig
def test_ablation_branch_predictor(benchmark, trace, show):
    stream, program = trace

    def run():
        rows = []
        for predictor in ("static", "pentium_m", "tage"):
            cfg = config_by_name("baseline", data_capacity_scale=32.0).with_updates(
                branch_predictor=predictor
            )
            rep = simulate(stream, program, cfg)
            rows.append(
                [predictor, rep.mpki["branch"],
                 rep.topdown.bad_speculation, rep.cycles]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — branch predictor\n"
        + format_table(["predictor", "brMPKI", "BS%", "cycles"], rows)
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["tage"][1] < by_name["pentium_m"][1] < by_name["static"][1]
    assert by_name["tage"][3] < by_name["static"][3]


@pytest.mark.paperfig
def test_ablation_cache_scaling(benchmark, trace, show):
    stream, program = trace

    def run():
        rows = []
        for scale_div in (8.0, 16.0, 32.0, 64.0):
            cfg = config_by_name("baseline", data_capacity_scale=scale_div)
            rep = simulate(stream, program, cfg)
            rows.append(
                [scale_div, rep.mpki["l1d"], rep.mpki["l2d"], rep.mpki["l3d"],
                 rep.topdown.backend_bound]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — data-capacity scaling divisor\n"
        + format_table(["scale", "L1d", "L2", "L3", "BE%"], rows)
    )
    l1 = [r[1] for r in rows]
    assert l1 == sorted(l1), "smaller caches must miss more"


@pytest.mark.paperfig
def test_ablation_fdo_layout(benchmark, clip, trace, show):
    stream, _default_program = trace

    def run():
        profile = collect_profile([stream])
        default = build_default()
        fdo = build_autofdo(profile)
        rows = []
        for build in (default, fdo):
            rep = profile_transcode(
                clip, EncoderOptions(crf=23, refs=2, bframes=1),
                program=build.program, data_capacity_scale=32.0,
            ).report
            rows.append(
                [build.name, build.program.layout.fetch_footprint_lines(),
                 rep.mpki["l1i"], rep.topdown.frontend_bound, rep.cycles]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — code layout (default vs AutoFDO)\n"
        + format_table(["layout", "fetch lines", "L1i MPKI", "FE%", "cycles"], rows)
    )
    default_row, fdo_row = rows
    assert fdo_row[1] < default_row[1], "FDO must shrink fetch footprints"
    assert fdo_row[2] < default_row[2], "FDO must cut L1i MPKI"
    assert fdo_row[4] < default_row[4], "FDO must save cycles"
