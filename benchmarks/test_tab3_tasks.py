"""Table III benchmark: the scheduler case-study task list."""

import pytest

from repro.experiments.tables import tab3


@pytest.mark.paperfig
def test_tab3_tasks(benchmark, show):
    text = benchmark.pedantic(tab3, rounds=1, iterations=1)
    show(text)
    assert "holi" in text
