"""Figure 8 benchmark: AutoFDO and Graphite speedups per video.

Paper numbers: AutoFDO 4.66% average (max 5.2%); Graphite 4.42% average
(max 4.87%). At proxy scale we target the same ballpark: both averages
positive and in the low single digits to low teens, with AutoFDO's win
coming from the front end and Graphite's from the data cache (verified
by the integration tests).
"""

import pytest

from repro.experiments import fig8_compiler


@pytest.mark.paperfig
def test_fig8_compiler(benchmark, scale, show):
    result = benchmark.pedantic(
        fig8_compiler.run, args=(scale,), rounds=1, iterations=1
    )
    show(result.render())
    assert 0.5 < result.autofdo_average < 15.0
    assert 0.5 < result.graphite_average < 15.0
    # Every video benefits from each optimization.
    assert min(result.autofdo_speedup_pct.values()) > -1.0
    assert min(result.graphite_speedup_pct.values()) > -1.0
