"""Figure 5 benchmark: eight µarch-inefficiency heatmaps across crf x refs.

Shape targets (paper §IV-A1): branch MPKI falls with crf and refs; L1/L2
data MPKI and ROB/RS stalls rise; the store buffer is the exception —
its stalls fall as refs grows.
"""

import pytest

from repro.experiments import fig5_inefficiency


@pytest.mark.paperfig
def test_fig5_inefficiency(benchmark, scale, show):
    result = benchmark.pedantic(
        fig5_inefficiency.run, args=(scale,), rounds=1, iterations=1
    )
    show(result.render())
    assert result.trend_along_crf("branch") < 0
    assert result.trend_along_crf("l1") > 0
    assert result.trend_along_crf("rob") > 0
    assert result.trend_along_crf("rs") > 0
    assert result.trend_along_refs("l2") > 0
    assert result.trend_along_refs("sb") < 0, "SB stalls fall with refs"
