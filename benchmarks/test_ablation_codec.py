"""Ablation benchmarks for codec design choices (DESIGN.md §6).

- trellis level vs bits and encode work,
- motion-search pattern vs SAD evaluations and compression,
- subme level vs quality.
"""

import pytest

from repro._util import format_table
from repro.codec.encoder import encode
from repro.codec.options import EncoderOptions
from repro.video.vbench import load_video


@pytest.fixture(scope="module")
def clip():
    return load_video("cricket", width=96, height=64, n_frames=8)


@pytest.mark.paperfig
def test_ablation_trellis(benchmark, clip, show):
    def run():
        rows = []
        for level in (0, 1, 2):
            opts = EncoderOptions(crf=23, refs=2, trellis=level, bframes=1)
            r = encode(clip, opts)
            rows.append([level, r.total_bits, r.psnr_db, r.bitrate_kbps])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — trellis quantization level\n"
        + format_table(["trellis", "bits", "PSNR(dB)", "kbps"], rows)
    )
    bits = [r[1] for r in rows]
    psnr = [r[2] for r in rows]
    # The trellis starts from round-to-nearest quantization and prunes by
    # rate-distortion: versus the dead-zone baseline it buys measurably
    # better quality for a bounded rate increase (an RD-efficiency win,
    # like x264's trellis at fixed crf).
    assert psnr[1] > psnr[0]
    assert bits[1] <= bits[0] * 1.15
    # Level 2 prunes at least as hard as level 1.
    assert bits[2] <= bits[1] * 1.02


@pytest.mark.paperfig
def test_ablation_motion_method(benchmark, clip, show):
    def run():
        rows = []
        for me in ("dia", "hex", "umh", "esa"):
            opts = EncoderOptions(crf=23, refs=1, me=me, merange=8, bframes=0)
            r = encode(clip, opts)
            rows.append([me, r.total_bits, r.psnr_db, r.encode_seconds])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — motion estimation method\n"
        + format_table(["me", "bits", "PSNR(dB)", "wall(s)"], rows)
    )
    by_me = {r[0]: r for r in rows}
    # Exhaustive search compresses at least as well as diamond.
    assert by_me["esa"][1] <= by_me["dia"][1] * 1.05


@pytest.mark.paperfig
def test_ablation_subme(benchmark, clip, show):
    def run():
        rows = []
        for subme in (0, 2, 4, 7):
            opts = EncoderOptions(crf=23, refs=1, subme=subme, bframes=0)
            r = encode(clip, opts)
            rows.append([subme, r.total_bits, r.psnr_db])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — subpixel refinement level\n"
        + format_table(["subme", "bits", "PSNR(dB)"], rows)
    )
    # Subpel refinement reduces residual energy => fewer bits at fixed crf.
    assert rows[-1][1] <= rows[0][1] * 1.05
