"""Figure 7 benchmark: all sixteen videos at medium/crf=23/refs=3.

Shape targets (paper §IV-A3): with rising entropy, front-end and
bad-speculation bound slots and branch MPKI rise while back-end bound
slots and data-cache MPKI fall — within and across resolution groups.
"""

import pytest

from repro.experiments import fig7_videos


@pytest.mark.paperfig
def test_fig7_videos(benchmark, scale, show):
    result = benchmark.pedantic(
        fig7_videos.run, args=(scale,), rounds=1, iterations=1
    )
    show(result.render())
    assert result.correlation("bad_speculation") > 0.5
    assert result.correlation("branch_mpki") > 0.5
    assert result.correlation("backend_bound") < -0.5
    assert result.correlation("l1d_mpki") < -0.3
