"""Table I benchmark: regenerate the vbench catalog with measured entropy."""

import pytest

from repro.experiments.tables import tab1


@pytest.mark.paperfig
def test_tab1_videos(benchmark, scale, show):
    result = benchmark.pedantic(tab1, args=(scale,), rounds=1, iterations=1)
    show(result.render())
    # The measured entropy of the synthetic stand-ins must preserve the
    # published complexity ordering at the extremes.
    m = result.measured_entropy
    assert m["desktop"] < m["cricket"] < m["hall"]
    assert m["presentation"] < m["holi"]
