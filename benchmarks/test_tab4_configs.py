"""Table IV benchmark: the five µarch configurations."""

import pytest

from repro.experiments.tables import tab4


@pytest.mark.paperfig
def test_tab4_configs(benchmark, show):
    text = benchmark.pedantic(tab4, rounds=1, iterations=1)
    show(text)
    assert "be_op1" in text and "tage" in text.lower()
