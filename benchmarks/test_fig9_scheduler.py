"""Figure 9 benchmark: random vs smart vs best scheduler speedups.

Paper numbers: the smart scheduler beats random by 3.72% and matches the
best scheduler's placement 75% of the time. Shape targets: best >= smart
> random; smart captures a substantial share of the oracle's gain.
"""

import pytest

from repro.experiments import fig9_scheduler


@pytest.mark.paperfig
def test_fig9_scheduler(benchmark, scale, show):
    result = benchmark.pedantic(
        fig9_scheduler.run, args=(scale,), rounds=1, iterations=1
    )
    show(result.render())
    speedups = result.speedups
    assert speedups["best"] >= speedups["smart"] >= speedups["random"] - 0.5
    assert result.smart_vs_random_pct > 0.0
    assert result.smart_matches_best_fraction >= 0.25
