"""Table II benchmark: the preset option matrix."""

import pytest

from repro.experiments.tables import tab2


@pytest.mark.paperfig
def test_tab2_presets(benchmark, show):
    text = benchmark.pedantic(tab2, rounds=1, iterations=1)
    show(text)
    assert "ultrafast" in text and "placebo" in text
