"""Figure 6 benchmark: the ten presets at crf=23, refs=3.

Shape targets (paper §IV-A2): time rises monotonically from ultrafast to
placebo; bitrate improves sharply up to veryfast then plateaus; data
cache MPKI falls with slower presets; branch MPKI has no single
direction.
"""

import pytest

from repro.experiments import fig6_presets


@pytest.mark.paperfig
def test_fig6_presets(benchmark, scale, show):
    result = benchmark.pedantic(
        fig6_presets.run, args=(scale,), rounds=1, iterations=1
    )
    show(result.render())
    times = result.series("time_seconds")
    # Broad monotonicity: placebo >> slow >> ultrafast.
    assert times[-1] > times[5] > times[0]
    # Bitrate: big improvement from ultrafast to veryfast...
    rates = result.series("bitrate_kbps")
    assert rates[2] < rates[0]
    # Data-cache MPKI falls from the fastest preset to the slowest.
    l1 = result.series("l1d_mpki")
    assert l1[-1] < l1[0]
